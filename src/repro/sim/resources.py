"""Shared resources for simulated processes.

:class:`PriorityResource` models a server with limited concurrency and a
priority queue — the exact construct §III.F of the paper needs: the
Rebuilder issues *low-priority* reorganisation I/O so normal requests
are served first.

:class:`Store` is an unbounded FIFO message queue (used for mailboxes
between MPI ranks and background helper threads).
"""

from __future__ import annotations

import heapq
import typing

from ..errors import SimulationError
from .events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from .core import Simulator

#: Priority used by ordinary application I/O.
PRIORITY_NORMAL = 0
#: Priority used by the Rebuilder's background reorganisation I/O.
PRIORITY_LOW = 10


#: Upper bound on pooled Grant instances kept per resource.
_GRANT_POOL_LIMIT = 64


class Grant(Event):
    """Event returned by :meth:`PriorityResource.acquire`.

    Fires (with the grant itself as value) when the resource slot is
    granted; pass it back to :meth:`PriorityResource.release`.

    Grants are recycled through a small per-resource pool once they
    are *processed and released* — the acquire/release idiom (SIM001)
    releases in a ``finally`` and drops the handle, so a released
    grant is dead to its holder.  Re-reading a grant after releasing
    it is outside the pooling contract (``Simulator(pooling=False)``
    disables the pool for differential testing).
    """

    __slots__ = ("resource", "priority", "released")

    def __init__(self, resource: "PriorityResource", priority: int):
        # Event.__init__ unrolled: grants are allocated once per device
        # operation and network hop, making this one of the hottest
        # constructors in the engine.
        self.sim = resource.sim
        self._cb0 = None
        self._callbacks = None
        self._value = None
        self._exc = None
        self._triggered = False
        self._processed = False
        self._had_joiners = False
        self.resource = resource
        self.priority = priority
        self.released = False


class PriorityResource:
    """A resource with ``capacity`` concurrent slots and priority waiting.

    Lower ``priority`` values are served first; ties are FIFO.  Usage::

        grant = yield device.acquire(priority=PRIORITY_NORMAL)
        try:
            yield sim.timeout(service_time)
        finally:
            device.release(grant)
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1: {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: list[tuple[int, int, Grant]] = []
        self._seq = 0
        self._grant_pool: list[Grant] = []
        self._grant_limit = _GRANT_POOL_LIMIT if sim.pooling else 0

    @property
    def in_use(self) -> int:
        """Number of currently-held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def acquire(self, priority: int = PRIORITY_NORMAL) -> Grant:
        """Request a slot; returns a :class:`Grant` event to yield on.

        Callers must release the grant in a ``finally`` block (simlint
        SIM001 enforces this tree-wide): a process killed while holding
        a slot would otherwise wedge the resource for the whole run.
        """
        pool = self._grant_pool
        if pool:
            grant = pool.pop()
            # _cb0/_callbacks/_exc are provably None on a processed-
            # and-released grant; _value was cleared at recycle time.
            grant._triggered = False
            grant._processed = False
            grant._had_joiners = False
            grant.priority = priority
            grant.released = False
        else:
            grant = Grant(self, priority)
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            # Inlined grant.succeed(grant) zero-delay path (the grant
            # is fresh, so the already-triggered check cannot fire).
            grant._triggered = True
            grant._value = grant
            sim = self.sim
            sim._seq = grant._qseq = sim._seq + 1
            sim._runq.append(grant)
        else:
            self._seq += 1
            heapq.heappush(self._waiters, (priority, self._seq, grant))
        return grant

    def release(self, grant: Grant) -> None:
        """Return a previously granted slot; wakes the next waiter."""
        if grant.resource is not self:
            raise SimulationError("grant released on the wrong resource")
        if grant.released:
            raise SimulationError("double release of a resource grant")
        if not grant.triggered:
            raise SimulationError("release of a grant that was never acquired")
        grant.released = True
        if self._waiters:
            next_grant = heapq.heappop(self._waiters)[2]
            # Inlined next_grant.succeed(next_grant): a queued grant is
            # untriggered by construction.
            next_grant._triggered = True
            next_grant._value = next_grant
            sim = self.sim
            sim._seq = next_grant._qseq = sim._seq + 1
            sim._runq.append(next_grant)
        else:
            self._in_use -= 1
        if grant._processed and len(self._grant_pool) < self._grant_limit:
            # Processed + released: the handle is dead to its holder
            # (see the Grant docstring).  An unprocessed grant — e.g.
            # released while still pending in the run queue — is never
            # pooled, so the dispatch it still owes stays safe.  Break
            # the self-referential value so pooled grants are inert.
            grant._value = None
            self._grant_pool.append(grant)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PriorityResource {self.name or id(self)} "
            f"{self._in_use}/{self.capacity} used, {len(self._waiters)} waiting>"
        )


class Store:
    """Unbounded FIFO store of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that fires with the
    next item (in put order), waking getters in request order.
    """

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._items: list[typing.Any] = []
        self._getters: list[Event] = []

    def put(self, item: typing.Any) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.pop(0).succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        # sim.event() recycles pooled generic events: a get whose sole
        # consumer is a process resume costs no allocation at all.
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.pop(0))
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)
