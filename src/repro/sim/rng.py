"""Deterministic named random streams.

Every stochastic component (HDD rotation sampling, workload offset
generation, ...) draws from its own named stream so that adding a new
consumer of randomness never perturbs existing ones.  Streams are
derived from a single experiment seed, making whole simulations
reproducible from one integer.
"""

from __future__ import annotations

import hashlib
import random


class RandomStreams:
    """A factory of independent, deterministic ``random.Random`` streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The per-stream seed is a stable hash of (experiment seed, name),
        so the same name always yields the same sequence for a given
        experiment seed, independent of creation order.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        stream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = stream
        return stream

    def fork(self, salt: str) -> "RandomStreams":
        """Derive an independent family of streams (e.g. per MPI rank)."""
        digest = hashlib.sha256(f"{self.seed}/{salt}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
