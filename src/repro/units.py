"""Size and time unit helpers.

The paper mixes KB/MB/GB (binary) request and file sizes with seconds
and MB/s throughput.  Everything inside the library is expressed in
**bytes** and **seconds**; this module is the single place where human
readable units are converted.
"""

from __future__ import annotations

import re

from .errors import ConfigError

#: One kibibyte in bytes.  The paper's "KB" is binary (4KB requests etc).
KiB: int = 1024
#: One mebibyte in bytes.
MiB: int = 1024 * KiB
#: One gibibyte in bytes.
GiB: int = 1024 * MiB

_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]*)\s*$")


def parse_size(text: str | int) -> int:
    """Parse a human-readable size ("16KB", "2GiB", 4096) into bytes.

    Integers pass through unchanged.  Suffixes are binary (KB == KiB),
    matching the paper's usage.

    >>> parse_size("16KB")
    16384
    >>> parse_size(512)
    512
    """
    if isinstance(text, int):
        if text < 0:
            raise ConfigError(f"size must be non-negative, got {text}")
        return text
    match = _SIZE_RE.match(text)
    if match is None:
        raise ConfigError(f"cannot parse size: {text!r}")
    value, suffix = match.groups()
    factor = _SUFFIXES.get(suffix.lower())
    if factor is None:
        raise ConfigError(f"unknown size suffix {suffix!r} in {text!r}")
    result = float(value) * factor
    if result != int(result):
        raise ConfigError(f"size {text!r} is not a whole number of bytes")
    return int(result)


def fmt_size(nbytes: float) -> str:
    """Format a byte count for tables ("16.0KiB", "2.0GiB")."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_bandwidth(bytes_per_second: float) -> str:
    """Format a throughput as the paper reports it (MB/s)."""
    return f"{bytes_per_second / MiB:.2f}MB/s"


def fmt_time(seconds: float) -> str:
    """Format a duration with a sensible unit for logs."""
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"
