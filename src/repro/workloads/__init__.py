"""Benchmark workload generators.

Re-implementations of the access patterns of the three benchmarks the
paper evaluates with (§V.A):

- :class:`IORWorkload` — IOR: each of n processes owns 1/n of a shared
  file and issues fixed-size requests at sequential or random offsets;
- :class:`HPIOWorkload` — HPIO: noncontiguous regions controlled by
  region count / size / spacing;
- :class:`TileIOWorkload` — MPI-Tile-IO: a 2D dense dataset accessed
  tile-per-process with nested-stride rows;
- :class:`SyntheticMixWorkload` — a parameterised mix of sequential
  and random streams for ablations and examples.
"""

from .base import Workload
from .hpio import HPIOWorkload
from .ior import IORWorkload
from .synthetic import SyntheticMixWorkload
from .tileio import TileIOWorkload
from .trace import TraceWorkload, export_trace, parse_trace
from .zipf import ZipfWorkload

__all__ = [
    "HPIOWorkload",
    "IORWorkload",
    "SyntheticMixWorkload",
    "TileIOWorkload",
    "TraceWorkload",
    "Workload",
    "ZipfWorkload",
    "export_trace",
    "parse_trace",
]
