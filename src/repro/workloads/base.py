"""Workload interface: per-rank access segment sequences."""

from __future__ import annotations

import abc

from ..errors import WorkloadError

Segment = tuple[int, int]  # (offset, size) in the shared file


class Workload(abc.ABC):
    """A parallel I/O access pattern over one shared file.

    Subclasses define :meth:`segments_for_rank`, the ordered request
    sequence each rank issues.  The sequence must be deterministic in
    (workload parameters, seed, rank) so a "second run" replays the
    exact pattern — the property §V.A's read methodology relies on
    ("many MPI programs are executed several times and present
    consistent data access patterns").
    """

    def __init__(self, processes: int, path: str, seed: int = 0):
        if processes < 1:
            raise WorkloadError(f"need at least one process: {processes}")
        if not path:
            raise WorkloadError("workload needs a file path")
        self.processes = processes
        self.path = path
        self.seed = seed
        #: Memoised per-rank segment lists (patterns are deterministic
        #: in (parameters, seed, rank) by contract, and generating one
        #: can shuffle/sample a whole region — regenerating it for
        #: every derived quantity and every rank body is pure waste).
        #: Treat the cached lists as immutable.
        self._segments_cache: dict[int, list[Segment]] = {}
        self._size_hint: int | None = None

    @property
    def name(self) -> str:
        return type(self).__name__.removesuffix("Workload").lower()

    @abc.abstractmethod
    def segments_for_rank(self, rank: int) -> list[Segment]:
        """The ordered (offset, size) requests rank ``rank`` issues."""

    def segments(self, rank: int) -> list[Segment]:
        """Memoised :meth:`segments_for_rank`; do not mutate the result."""
        segs = self._segments_cache.get(rank)
        if segs is None:
            segs = self._segments_cache[rank] = self.segments_for_rank(rank)
        return segs

    # -- derived quantities ------------------------------------------------
    def data_bytes(self) -> int:
        """Total bytes accessed across all ranks (cache sizing input)."""
        return sum(
            size
            for rank in range(self.processes)
            for _, size in self.segments(rank)
        )

    def size_hint(self) -> int:
        """Reserved size of the shared file."""
        hint = self._size_hint
        if hint is None:
            hint = self._size_hint = max(
                (offset + size
                 for rank in range(self.processes)
                 for offset, size in self.segments(rank)),
                default=0,
            )
        return hint

    def validate(self) -> None:
        """Sanity-check the pattern (no negative offsets, sizes > 0)."""
        for rank in range(self.processes):
            for offset, size in self.segments(rank):
                if offset < 0 or size <= 0:
                    raise WorkloadError(
                        f"{self.name}: bad segment ({offset}, {size}) "
                        f"for rank {rank}"
                    )

    # -- execution ---------------------------------------------------------
    def make_body(self, op: str):
        """Rank body issuing this workload's requests with ``op``.

        Returns a callable suitable for :meth:`repro.mpiio.MPIJob.run`.
        """
        if op not in ("read", "write"):
            raise WorkloadError(f"op must be read/write: {op!r}")

        def body(ctx):
            handle = yield from ctx.open(self.path, max(self.size_hint(), 1))
            for offset, size in self.segments(ctx.rank):
                if op == "read":
                    yield from handle.read_at(offset, size)
                else:
                    yield from handle.write_at(offset, size)

        return body
