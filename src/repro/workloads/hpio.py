"""HPIO-style workload (§V.C).

HPIO generates patterns from three parameters: region count, region
size and region spacing; non-zero spacing creates noncontiguous
access.  Each process owns a run of ``region_count`` regions separated
by ``region_spacing`` holes (0 spacing degenerates to a contiguous
sequential stream, exactly as the paper notes).
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..units import parse_size
from .base import Segment, Workload


class HPIOWorkload(Workload):
    """Noncontiguous regions with configurable spacing."""

    def __init__(
        self,
        processes: int,
        region_count: int = 4096,
        region_size: int | str = "8KB",
        region_spacing: int | str = 0,
        path: str = "/hpio.dat",
        seed: int = 0,
    ):
        super().__init__(processes, path, seed)
        self.region_count = region_count
        self.region_size = parse_size(region_size)
        self.region_spacing = parse_size(region_spacing)
        if region_count < 1:
            raise WorkloadError("region count must be >= 1")
        if self.region_size < 1:
            raise WorkloadError("region size must be >= 1")

    @property
    def stride(self) -> int:
        return self.region_size + self.region_spacing

    def segments_for_rank(self, rank: int) -> list[Segment]:
        if not (0 <= rank < self.processes):
            raise WorkloadError(f"rank {rank} out of range")
        base = rank * self.region_count * self.stride
        return [
            (base + j * self.stride, self.region_size)
            for j in range(self.region_count)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HPIO({self.processes}p, regions={self.region_count}x"
            f"{self.region_size}, spacing={self.region_spacing})"
        )
