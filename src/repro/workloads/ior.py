"""IOR-style workload (§V.B).

"Each of the n MPI processes reads its own 1/n of the shared file, and
continuously issues requests with sequential or random offsets."
Random mode visits every block of the rank's region exactly once in a
shuffled order (IOR's ``-z`` behaviour), so sequential and random move
identical byte volumes and differ only in ordering.
"""

from __future__ import annotations

import random

from ..errors import WorkloadError
from ..units import parse_size
from .base import Segment, Workload

PATTERNS = ("sequential", "random")


class IORWorkload(Workload):
    """A single IOR instance over one shared file."""

    def __init__(
        self,
        processes: int,
        request_size: int | str,
        file_size: int | str,
        pattern: str = "sequential",
        path: str = "/ior.dat",
        seed: int = 0,
        requests_per_rank: int | None = None,
    ):
        """``requests_per_rank`` limits how many blocks each rank
        touches (IOR's segment-count knob).  By default every block of
        the rank's region is accessed exactly once; a limit keeps the
        request count tractable while the *span* (and therefore the
        seek distances of the random pattern) stays at full size.
        """
        super().__init__(processes, path, seed)
        self.request_size = parse_size(request_size)
        self.file_size = parse_size(file_size)
        if pattern not in PATTERNS:
            raise WorkloadError(f"pattern must be one of {PATTERNS}: {pattern!r}")
        self.pattern = pattern
        if self.request_size < 1:
            raise WorkloadError("request size must be positive")
        region = self.file_size // processes
        blocks = region // self.request_size
        if blocks < 1:
            raise WorkloadError(
                f"file too small: {self.file_size} bytes over {processes} "
                f"ranks leaves no {self.request_size}-byte request"
            )
        if requests_per_rank is not None:
            if requests_per_rank < 1:
                raise WorkloadError("requests_per_rank must be >= 1")
            if requests_per_rank > blocks:
                raise WorkloadError(
                    f"requests_per_rank={requests_per_rank} exceeds the "
                    f"{blocks} blocks in each rank's region"
                )
        self.region_blocks = blocks
        self.requests_per_rank = (
            blocks if requests_per_rank is None else requests_per_rank
        )

    def segments_for_rank(self, rank: int) -> list[Segment]:
        if not (0 <= rank < self.processes):
            raise WorkloadError(f"rank {rank} out of range")
        region = self.file_size // self.processes
        base = rank * region
        rng = random.Random((self.seed << 20) ^ rank)
        if self.pattern == "random":
            if self.requests_per_rank == self.region_blocks:
                indices = list(range(self.region_blocks))
                rng.shuffle(indices)
            else:
                indices = rng.sample(
                    range(self.region_blocks), self.requests_per_rank
                )
        else:
            indices = list(range(self.requests_per_rank))
        return [
            (base + i * self.request_size, self.request_size) for i in indices
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"IOR({self.processes}p, req={self.request_size}, "
            f"file={self.file_size}, {self.pattern})"
        )
