"""Synthetic mixed workload for ablations and examples.

A fraction of the ranks stream sequentially; the rest issue random
requests — the "non-uniform workloads" S4D-Cache targets (§III: "cache
small random accesses in parallel I/O system with non-uniform
workloads").
"""

from __future__ import annotations

import random

from ..errors import WorkloadError
from ..units import parse_size
from .base import Segment, Workload


class SyntheticMixWorkload(Workload):
    """Some ranks sequential, some random, optionally different sizes."""

    def __init__(
        self,
        processes: int,
        file_size: int | str,
        random_fraction: float = 0.5,
        sequential_request: int | str = "1MB",
        random_request: int | str = "16KB",
        path: str = "/mix.dat",
        seed: int = 0,
    ):
        super().__init__(processes, path, seed)
        if not (0.0 <= random_fraction <= 1.0):
            raise WorkloadError("random_fraction must be in [0, 1]")
        self.file_size = parse_size(file_size)
        self.random_fraction = random_fraction
        self.sequential_request = parse_size(sequential_request)
        self.random_request = parse_size(random_request)
        self.random_ranks = {
            rank
            for rank in range(processes)
            if rank < round(random_fraction * processes)
        }

    def is_random_rank(self, rank: int) -> bool:
        return rank in self.random_ranks

    def segments_for_rank(self, rank: int) -> list[Segment]:
        if not (0 <= rank < self.processes):
            raise WorkloadError(f"rank {rank} out of range")
        region = self.file_size // self.processes
        base = rank * region
        if self.is_random_rank(rank):
            req = self.random_request
            count = region // req
            indices = list(range(count))
            random.Random((self.seed << 20) ^ rank).shuffle(indices)
        else:
            req = self.sequential_request
            count = region // req
            indices = list(range(count))
        if count < 1:
            raise WorkloadError("file too small for one request per rank")
        return [(base + i * req, req) for i in indices]
