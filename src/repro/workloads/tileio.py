"""MPI-Tile-IO-style workload (§V.D).

The file is a dense 2D dataset; each process owns one tile of
``elements_x`` x ``elements_y`` elements and accesses it row by row.
A tile row is contiguous; consecutive rows are strided by the full
dataset width — the "nested-strided" pattern the paper highlights
("each process has a fixed-stride access pattern and yields better
data locality than that of the IOR [random] test").
"""

from __future__ import annotations

import math

from ..errors import WorkloadError
from ..units import parse_size
from .base import Segment, Workload


def _process_grid(processes: int) -> tuple[int, int]:
    """Most-square factorisation nr_tiles_x * nr_tiles_y == processes."""
    x = int(math.isqrt(processes))
    while processes % x:
        x -= 1
    return x, processes // x


class TileIOWorkload(Workload):
    """One tile per process over a 2D dataset."""

    def __init__(
        self,
        processes: int,
        elements_x: int = 10,
        elements_y: int = 10,
        element_size: int | str = "32KB",
        path: str = "/tileio.dat",
        seed: int = 0,
    ):
        super().__init__(processes, path, seed)
        if elements_x < 1 or elements_y < 1:
            raise WorkloadError("tile dimensions must be >= 1")
        self.elements_x = elements_x
        self.elements_y = elements_y
        self.element_size = parse_size(element_size)
        self.tiles_x, self.tiles_y = _process_grid(processes)

    @property
    def row_bytes(self) -> int:
        """Bytes of one full dataset row."""
        return self.tiles_x * self.elements_x * self.element_size

    @property
    def tile_row_bytes(self) -> int:
        """Bytes of one tile row (the contiguous unit)."""
        return self.elements_x * self.element_size

    def segments_for_rank(self, rank: int) -> list[Segment]:
        if not (0 <= rank < self.processes):
            raise WorkloadError(f"rank {rank} out of range")
        tile_x = rank % self.tiles_x
        tile_y = rank // self.tiles_x
        segments: list[Segment] = []
        for row in range(self.elements_y):
            dataset_row = tile_y * self.elements_y + row
            offset = (
                dataset_row * self.row_bytes
                + tile_x * self.tile_row_bytes
            )
            segments.append((offset, self.tile_row_bytes))
        return segments

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TileIO({self.processes}p grid {self.tiles_x}x{self.tiles_y}, "
            f"tile {self.elements_x}x{self.elements_y} x {self.element_size}B)"
        )
