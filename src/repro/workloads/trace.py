"""Trace-driven workload replay.

Research I/O systems are routinely evaluated against recorded request
traces (the paper's own IOSIG tooling produces them).  A
:class:`TraceWorkload` replays a trace file through the simulated
stack; together with :class:`~repro.iosig.Tracer` export this closes
the loop: record a simulated (or synthesised) run, replay it against a
different configuration.

Trace format: text, one request per line::

    # comment
    <rank> <op> <offset> <size>

with ``op`` in {read, write} and offsets/sizes in bytes (size suffixes
like ``16KB`` are accepted).  Replay preserves per-rank request order;
an optional op filter selects the write or read sub-stream.
"""

from __future__ import annotations

import dataclasses
import io
import typing

from ..errors import WorkloadError
from ..units import parse_size
from .base import Segment, Workload


@dataclasses.dataclass(frozen=True, slots=True)
class TraceRequest:
    """One parsed trace line."""

    rank: int
    op: str
    offset: int
    size: int


def parse_trace(
    lines: typing.Iterable[str], source: str = "<trace>"
) -> list[TraceRequest]:
    """Parse trace lines; raises WorkloadError with line numbers."""
    requests: list[TraceRequest] = []
    for number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 4:
            raise WorkloadError(
                f"{source}:{number}: expected 'rank op offset size', "
                f"got {line!r}"
            )
        rank_text, op, offset_text, size_text = parts
        if op not in ("read", "write"):
            raise WorkloadError(
                f"{source}:{number}: op must be read/write, got {op!r}"
            )
        try:
            rank = int(rank_text)
            offset = parse_size(offset_text)
            size = parse_size(size_text)
        except (ValueError, Exception) as exc:
            raise WorkloadError(f"{source}:{number}: {exc}") from exc
        if rank < 0 or size <= 0:
            raise WorkloadError(
                f"{source}:{number}: rank must be >= 0 and size > 0"
            )
        requests.append(TraceRequest(rank, op, offset, size))
    if not requests:
        raise WorkloadError(f"{source}: trace contains no requests")
    return requests


def export_trace(records, stream: io.TextIOBase) -> int:
    """Write IOSIG tracer records in the replayable format."""
    count = 0
    stream.write("# rank op offset size\n")
    for record in records:
        stream.write(
            f"{record.rank} {record.op} {record.offset} {record.size}\n"
        )
        count += 1
    return count


class TraceWorkload(Workload):
    """Replay a recorded request trace.

    ``op_filter`` restricts replay to one direction ("read"/"write");
    the runner's phase structure drives each direction separately, so
    by default :meth:`segments_for_rank` serves whichever op the body
    is built for via :meth:`make_body`.
    """

    def __init__(
        self,
        trace: str | typing.Iterable[str],
        path: str = "/trace.dat",
        op_filter: str | None = None,
        seed: int = 0,
    ):
        if isinstance(trace, str):
            with open(trace) as fh:
                requests = parse_trace(fh, source=trace)
        else:
            requests = parse_trace(trace)
        if op_filter not in (None, "read", "write"):
            raise WorkloadError(f"bad op_filter {op_filter!r}")
        if op_filter is not None:
            requests = [r for r in requests if r.op == op_filter]
            if not requests:
                raise WorkloadError(f"trace has no {op_filter} requests")
        processes = max(r.rank for r in requests) + 1
        super().__init__(processes, path, seed)
        self.requests = requests

    def requests_for_rank(self, rank: int) -> list[TraceRequest]:
        return [r for r in self.requests if r.rank == rank]

    def segments_for_rank(self, rank: int) -> list[Segment]:
        if not (0 <= rank < self.processes):
            raise WorkloadError(f"rank {rank} out of range")
        return [
            (r.offset, r.size) for r in self.requests if r.rank == rank
        ]

    def make_body(self, op: str | None = None):
        """Replay body.

        With ``op=None`` each request keeps its traced direction
        (mixed read/write replay); otherwise every request is issued
        with the forced op, matching the base-class contract.
        """
        if op is not None:
            return super().make_body(op)

        def body(ctx):
            handle = yield from ctx.open(self.path, max(self.size_hint(), 1))
            for request in self.requests_for_rank(ctx.rank):
                if request.op == "read":
                    yield from handle.read_at(request.offset, request.size)
                else:
                    yield from handle.write_at(request.offset, request.size)

        return body
