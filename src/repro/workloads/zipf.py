"""Zipf-skewed hotspot workload.

IOR's random mode touches every block exactly once, which makes a
*selective* cache's job mostly about absorbing randomness.  Real
workloads re-access data with skewed popularity; a Zipf request stream
exercises the complementary machinery — hit paths, LRU recency, the
benefit EMA — and is the natural stage for comparing locality-driven
and benefit-driven caching.
"""

from __future__ import annotations

import random

from ..errors import WorkloadError
from ..units import parse_size
from .base import Segment, Workload


def zipf_weights(n: int, skew: float) -> list[float]:
    """Unnormalised Zipf weights 1/rank^skew for ranks 1..n."""
    return [1.0 / (rank ** skew) for rank in range(1, n + 1)]


class ZipfWorkload(Workload):
    """Requests drawn from a Zipf popularity distribution over blocks.

    Each rank owns ``1/n`` of the file (like IOR) and issues
    ``requests_per_rank`` requests whose *block popularity* follows a
    Zipf(``skew``) law over the rank's blocks, with a per-rank random
    popularity order (the hot set differs between ranks).
    """

    def __init__(
        self,
        processes: int,
        request_size: int | str,
        file_size: int | str,
        requests_per_rank: int = 256,
        skew: float = 1.0,
        path: str = "/zipf.dat",
        seed: int = 0,
    ):
        super().__init__(processes, path, seed)
        self.request_size = parse_size(request_size)
        self.file_size = parse_size(file_size)
        if requests_per_rank < 1:
            raise WorkloadError("requests_per_rank must be >= 1")
        if skew < 0:
            raise WorkloadError("skew must be >= 0")
        self.requests_per_rank = requests_per_rank
        self.skew = skew
        region = self.file_size // processes
        self.region_blocks = region // self.request_size
        if self.region_blocks < 1:
            raise WorkloadError("file too small for one block per rank")

    def segments_for_rank(self, rank: int) -> list[Segment]:
        if not (0 <= rank < self.processes):
            raise WorkloadError(f"rank {rank} out of range")
        rng = random.Random((self.seed << 20) ^ rank)
        region = self.file_size // self.processes
        base = rank * region
        # Popularity ranks assigned to shuffled block indices so the
        # hot blocks are scattered through the region.
        blocks = list(range(self.region_blocks))
        rng.shuffle(blocks)
        weights = zipf_weights(self.region_blocks, self.skew)
        chosen = rng.choices(blocks, weights=weights,
                             k=self.requests_per_rank)
        return [
            (base + block * self.request_size, self.request_size)
            for block in chosen
        ]

    def unique_blocks(self, rank: int) -> int:
        """Size of the rank's actual working set (distinct blocks)."""
        return len({offset for offset, _ in self.segments_for_rank(rank)})
