"""Incremental engine cache: --changed reruns only dirty files."""

import json

from repro.analysis import LintConfig
from repro.analysis.cache import LintCache
from repro.analysis.engine import lint_paths

CLEAN = "def f(sim):\n    return sim.now\n"
CLEAN_B = "def g(sim):\n    return sim.now + 1\n"
DIRTY = "import time\n\ndef f():\n    return time.time()\n"


def _tree(tmp_path, files):
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True, exist_ok=True)
    for name, source in files.items():
        (pkg / name).write_text(source)
    return pkg


def _run(tmp_path, config=None):
    return lint_paths(
        [tmp_path / "src"],
        config if config is not None else LintConfig(),
        root=tmp_path,
        cache_path=tmp_path / ".simlint_cache.json",
        changed_only=True,
    )


def test_second_run_reuses_everything(tmp_path):
    _tree(tmp_path, {"a.py": CLEAN, "b.py": CLEAN_B})
    first = _run(tmp_path)
    assert first.files_reused == 0
    second = _run(tmp_path)
    assert second.files_reused == 2
    assert second.findings == first.findings


def test_editing_one_file_reruns_only_that_file(tmp_path):
    pkg = _tree(tmp_path, {"a.py": CLEAN, "b.py": CLEAN_B})
    _run(tmp_path)
    # Rewrite a.py with different *comment-free* clean code whose
    # summaries match (same name, still untainted): b.py stays cached,
    # a.py is content-dirty and reruns.
    (pkg / "a.py").write_text("def f(sim):\n    now = sim.now\n    return now\n")
    report = _run(tmp_path)
    assert report.files_reused == 1
    assert report.files_checked == 2


def test_findings_are_reproduced_from_cache(tmp_path):
    _tree(tmp_path, {"bad.py": DIRTY})
    first = _run(tmp_path)
    assert [f.code for f in first.findings] == ["DET001"]
    second = _run(tmp_path)
    assert second.files_reused == 1
    assert second.findings == first.findings


def test_comment_edit_does_not_dirty_other_files(tmp_path):
    pkg = _tree(tmp_path, {"a.py": CLEAN, "b.py": CLEAN_B})
    _run(tmp_path)
    # A comment-only edit changes a's content hash but not the
    # project's semantic fingerprint: b must stay cached.
    (pkg / "a.py").write_text(CLEAN + "# trailing comment\n")
    report = _run(tmp_path)
    assert report.files_reused == 1


def test_semantic_edit_invalidates_dependents(tmp_path):
    pkg = _tree(tmp_path, {"a.py": CLEAN, "b.py": CLEAN_B})
    _run(tmp_path)
    # Turning a's function into a taint source flips the project
    # fingerprint: nothing may be reused.
    (pkg / "a.py").write_text(
        "import time\n\ndef f(sim):\n    return time.time()\n"
    )
    report = _run(tmp_path)
    assert report.files_reused == 0


def test_config_change_invalidates_cache(tmp_path):
    _tree(tmp_path, {"a.py": CLEAN})
    _run(tmp_path)
    report = _run(tmp_path, config=LintConfig(ignore=frozenset({"DET001"})))
    assert report.files_reused == 0


def test_without_changed_flag_cache_is_written_not_read(tmp_path):
    _tree(tmp_path, {"a.py": CLEAN})
    for _ in range(2):
        report = lint_paths(
            [tmp_path / "src"], LintConfig(), root=tmp_path,
            cache_path=tmp_path / ".simlint_cache.json",
            changed_only=False,
        )
        assert report.files_reused == 0  # priming runs never reuse


def test_corrupt_cache_is_tolerated(tmp_path):
    _tree(tmp_path, {"a.py": CLEAN})
    cache_file = tmp_path / ".simlint_cache.json"
    cache_file.write_text("{not json")
    report = _run(tmp_path)
    assert report.files_checked == 1
    # ...and the run rewrote a valid cache.
    assert json.loads(cache_file.read_text())


def test_cache_load_missing_file(tmp_path):
    cache = LintCache.load(tmp_path / "absent.json")
    assert cache.lookup("x.py", "h", "c", "p") is None
