"""The ``python -m repro lint`` command-line interface."""

import json

from repro.analysis.cli import main

DIRTY = "import time\n\ndef f():\n    return time.time()\n"
CLEAN = "def f(sim):\n    return sim.now\n"


def _tree(tmp_path, source):
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(source)
    return tmp_path


def test_exit_zero_and_summary_on_clean_tree(tmp_path, capsys):
    root = _tree(tmp_path, CLEAN)
    code = main(["--root", str(root), str(root / "src")])
    out = capsys.readouterr().out
    assert code == 0
    assert "1 file checked, clean" in out


def test_exit_one_and_text_findings_on_dirty_tree(tmp_path, capsys):
    root = _tree(tmp_path, DIRTY)
    code = main(["--root", str(root), str(root / "src")])
    out = capsys.readouterr().out
    assert code == 1
    assert "DET001" in out
    assert "mod.py:4:" in out


def test_json_output_shape(tmp_path, capsys):
    root = _tree(tmp_path, DIRTY)
    code = main(
        ["--root", str(root), "--format", "json", str(root / "src")]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    assert payload["counts_by_code"] == {"DET001": 1}
    (finding,) = payload["findings"]
    assert finding["code"] == "DET001"
    assert finding["path"].endswith("mod.py")
    assert finding["line"] == 4


def test_select_and_ignore_flags(tmp_path):
    root = _tree(tmp_path, DIRTY)
    args = ["--root", str(root), str(root / "src")]
    assert main([*args, "--select", "DET002"]) == 0
    assert main([*args, "--ignore", "det001"]) == 0
    assert main([*args, "--select", "DET001"]) == 1


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main(["--root", str(tmp_path), str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in (
        "DET001", "DET002", "DET003", "DET004", "DET005",
        "SIM001", "SIM002", "OBS001", "ERR001",
    ):
        assert code in out


def test_pyproject_allowlist_honoured(tmp_path, capsys):
    root = _tree(tmp_path, DIRTY)
    (root / "pyproject.toml").write_text(
        "[tool.simlint.allow]\nDET001 = [\"src/repro/sim/*\"]\n"
    )
    assert main(["--root", str(root), str(root / "src")]) == 0
    assert "clean" in capsys.readouterr().out
