"""Satellite coverage: config allowlists × new codes, suppressions."""

from repro.analysis import LintConfig
from repro.analysis.engine import lint_paths, lint_source
from repro.analysis.findings import PARSE_ERROR
from repro.analysis.suppressions import (
    Suppressions,
    comment_directive_lines,
)

from .util import codes, lint_snippet

LEAKY = """
def fetch(self, entry):
    allocation = self.space.find_free_space(entry.d_file, 8)
    yield from self.client.write(allocation.c_offset, 8)
"""


# -- suppressions parsing -----------------------------------------------------

def test_multi_code_disable_on_one_line():
    sup = Suppressions(
        "x = f()  # simlint: disable=DET006, SIM004,sim005\n"
    )
    assert sup.by_line == {1: {"DET006", "SIM004", "SIM005"}}
    assert sup.directives == [
        (1, "line", "DET006"), (1, "line", "SIM004"), (1, "line", "SIM005"),
    ]


def test_file_and_line_scopes_record_separately():
    sup = Suppressions(
        "# simlint: disable-file=SIM004\n"
        "y = g()  # simlint: disable=DET006\n"
    )
    assert sup.file_wide == {"SIM004"}
    assert sup.by_line == {2: {"DET006"}}
    assert (1, "file", "SIM004") in sup.directives
    assert (2, "line", "DET006") in sup.directives


def test_comment_directive_lines_excludes_strings():
    source = (
        'DOC = "the syntax is # simlint: disable=DET001"\n'
        "x = 1  # simlint: disable=DET002\n"
    )
    assert comment_directive_lines(source) == {2}


def test_comment_directive_lines_tokenize_fallback():
    # Untokenizable text (unterminated string) falls back to the
    # textual scan instead of raising.
    source = "# simlint: disable=DET001\nx = '\n"
    assert 1 in comment_directive_lines(source)


def test_inline_disable_silences_new_rules():
    findings = lint_snippet(
        LEAKY.replace(
            "allocation = self.space.find_free_space(entry.d_file, 8)",
            "allocation = self.space.find_free_space(entry.d_file, 8)"
            "  # simlint: disable=SIM004",
        ),
        rel_path="src/repro/core/snippet.py",
    )
    assert "SIM004" not in codes(findings)


# -- allowlists × new rule codes ----------------------------------------------

def test_allowlist_exempts_sim004_per_path():
    config = LintConfig(
        allow={"SIM004": ("*/core/legacy_*.py",)},
    )
    exempt = lint_source(
        LEAKY, "src/repro/core/legacy_mover.py", config
    )
    assert "SIM004" not in codes(exempt)
    covered = lint_source(
        LEAKY, "src/repro/core/mover.py", config
    )
    assert "SIM004" in codes(covered)


def test_allowlist_for_one_code_leaves_others_active():
    source = (
        "import time\n"
        "\n"
        "def pace(sim):\n"
        "    delay = time.perf_counter()\n"
        "    yield sim.timeout(delay)\n"
    )
    config = LintConfig(allow={"DET001": ("*",)})
    findings = lint_source(source, "src/repro/sim/pace.py", config)
    assert "DET001" not in codes(findings)
    assert "DET006" in codes(findings)


def test_unknown_code_in_selection_is_harmless():
    findings = lint_snippet(
        LEAKY,
        rel_path="src/repro/core/snippet.py",
        config=LintConfig(select=frozenset({"SIM004", "ZZZ999"})),
    )
    assert codes(findings) == ["SIM004"]


# -- engine error reporting (never skip silently) -----------------------------

def test_lint_paths_reports_syntax_error_and_keeps_going(tmp_path):
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "broken.py").write_text("def broken(:\n")
    (pkg / "dirty.py").write_text(
        "import time\n\ndef f():\n    return time.time()\n"
    )
    report = lint_paths([tmp_path / "src"], root=tmp_path)
    assert report.files_checked == 2
    by_code = report.counts_by_code()
    assert by_code[PARSE_ERROR] == 1
    assert by_code["DET001"] == 1
    e999 = [f for f in report.findings if f.code == PARSE_ERROR][0]
    assert e999.path == "src/repro/sim/broken.py"
    assert "syntax error" in e999.message


def test_lint_paths_reports_unreadable_file(tmp_path):
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "binary.py").write_bytes(b"\xff\xfe\x00garbage\x80")
    report = lint_paths([tmp_path / "src"], root=tmp_path)
    assert report.files_checked == 1
    (finding,) = report.findings
    assert finding.code == PARSE_ERROR
    assert "cannot read file" in finding.message


def test_unparseable_file_is_excluded_from_project(tmp_path):
    """The broken file is reported but must not poison the analysis of
    its intact siblings."""
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "broken.py").write_text("class Oops(:\n")
    (pkg / "worker.py").write_text(
        "class Worker:\n"
        "    def start(self, sim):\n"
        "        sim.spawn(self.run(), name='w')\n"
        "\n"
        "    def run(self):\n"
        "        yield 0.5\n"
    )
    report = lint_paths([tmp_path / "src"], root=tmp_path)
    assert sorted(codes(report.findings)) == [PARSE_ERROR, "SIM005"]
