"""CFG construction and reaching definitions (analysis.dataflow)."""

import ast
import textwrap

from repro.analysis.dataflow import (
    EXC,
    ReachingDefinitions,
    assigned_names,
    build_cfg,
    stmt_can_raise,
    yields_in_own_scope,
)


def _fn(source: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(source))
    assert isinstance(tree.body[0], (ast.FunctionDef, ast.AsyncFunctionDef))
    return tree.body[0]


def _stmt_at(fn: ast.AST, lineno: int) -> ast.stmt:
    for node in ast.walk(fn):
        if isinstance(node, ast.stmt) and getattr(
            node, "lineno", None
        ) == lineno:
            return node
    raise AssertionError(f"no statement at line {lineno}")


def _reachable(cfg, start, *, follow_exc=True):
    """Set of nodes reachable from ``start`` along succ edges."""
    seen = set()
    stack = [start]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        for succ, label in node.succs:
            if label == EXC and not follow_exc:
                continue
            stack.append(succ)
    return seen


# -- which statements get exception edges ------------------------------------

def test_only_yields_and_raises_can_raise():
    fn = _fn(
        """
        def f(client):
            a = client.prepare()
            yield client.read()
            raise RuntimeError(a)
        """
    )
    assign, yield_stmt, raise_stmt = fn.body
    assert not stmt_can_raise(assign)
    assert stmt_can_raise(yield_stmt)
    assert stmt_can_raise(raise_stmt)


def test_yield_inside_nested_def_does_not_count():
    fn = _fn(
        """
        def f(items):
            gens = [g() for g in items]
            def inner():
                yield 1
            return inner
        """
    )
    # f itself is not a generator: inner's yield is a different scope.
    assert not yields_in_own_scope(fn)
    assert not stmt_can_raise(fn.body[0])


# -- structural edges ---------------------------------------------------------

def test_while_true_has_no_fall_through():
    fn = _fn(
        """
        def run(sim):
            while True:
                yield sim.timeout(1)
            print("never")
        """
    )
    cfg = build_cfg(fn)
    unreachable = _stmt_at(fn, 5)
    reached = _reachable(cfg, cfg.entry)
    assert cfg.node_of[unreachable] not in reached
    # ...but the kill path (exception at the yield) exits the function.
    assert cfg.raise_exit in reached


def test_if_none_edges_are_labelled():
    fn = _fn(
        """
        def f(space):
            allocation = space.find_free_space()
            if allocation is None:
                return False
            return allocation
        """
    )
    cfg = build_cfg(fn)
    test_node = cfg.node_of[_stmt_at(fn, 4)]
    labels = {label for _succ, label in test_node.succs}
    assert ("isnone", "allocation") in labels
    assert ("notnone", "allocation") in labels


def test_exception_at_yield_reaches_handler_then_continuation():
    fn = _fn(
        """
        def f(client):
            try:
                yield client.read()
            except ValueError:
                recovered = True
            done = True
        """
    )
    cfg = build_cfg(fn)
    yield_node = cfg.node_of[_stmt_at(fn, 4)]
    handler_body = cfg.node_of[_stmt_at(fn, 6)]
    after = cfg.node_of[_stmt_at(fn, 7)]
    reached = _reachable(cfg, yield_node)
    assert handler_body in reached
    assert after in reached
    # The narrow handler does not catch everything: the raise exit
    # stays reachable through the unmatched-dispatch edge.
    assert cfg.raise_exit in reached


def test_broad_handler_blocks_raise_exit():
    fn = _fn(
        """
        def f(client):
            try:
                yield client.read()
            except BaseException:
                recovered = True
            done = True
        """
    )
    cfg = build_cfg(fn)
    assert cfg.raise_exit not in _reachable(cfg, cfg.entry)


# -- finally duplication per entrant class ------------------------------------

def test_finally_normal_path_keeps_no_exception_edge():
    """The regression behind the Rebuilder false positive: the normal
    path through a finally must not inherit the exceptional
    continuation added for a handler's re-raise."""
    fn = _fn(
        """
        def f(client, ctx):
            try:
                yield client.read()
            except BaseException:
                client.release()
                raise
            finally:
                ctx.finish()
            published = True
        """
    )
    cfg = build_cfg(fn)
    yield_node = cfg.node_of[_stmt_at(fn, 4)]
    release = cfg.node_of[_stmt_at(fn, 6)]
    published = cfg.node_of[_stmt_at(fn, 10)]

    # Normal continuation: yield -> finally copy -> published, with the
    # raise exit unreachable unless exceptional edges are followed.
    normal = _reachable(cfg, yield_node, follow_exc=False)
    assert published in normal
    assert cfg.raise_exit not in normal

    # The exceptional path goes through the handler (release) before
    # any route to the raise exit.
    exceptional = _reachable(cfg, yield_node) - normal
    assert cfg.raise_exit in _reachable(cfg, release)
    assert any(n.stmt is release.stmt for n in exceptional | {release})


def test_finally_return_path_reaches_exit_not_raise():
    fn = _fn(
        """
        def f(client, ctx):
            try:
                yield client.read()
                return True
            finally:
                ctx.finish()
        """
    )
    cfg = build_cfg(fn)
    ret = cfg.node_of[_stmt_at(fn, 5)]
    reached = _reachable(cfg, ret, follow_exc=False)
    assert cfg.exit in reached
    assert cfg.raise_exit not in reached


def test_finally_body_built_once_per_entrant_class():
    fn = _fn(
        """
        def f(client, ctx):
            try:
                yield client.read()
                return True
            finally:
                ctx.finish()
        """
    )
    cfg = build_cfg(fn)
    finish = _stmt_at(fn, 7)
    copies = [
        n for n in cfg.nodes if n.kind == "stmt" and n.stmt is finish
    ]
    # Exceptional + return entrants exist; no normal fall-through
    # (every body path returns), so exactly two copies.
    assert len(copies) == 2
    # node_of keeps exactly one canonical copy.
    assert cfg.node_of[finish] in copies


# -- reaching definitions -----------------------------------------------------

def test_reaching_definitions_join_over_branches():
    fn = _fn(
        """
        def f(flag):
            x = 1
            if flag:
                x = 2
            sink = x
        """
    )
    rd = ReachingDefinitions(fn)
    sink = _stmt_at(fn, 6)
    assert rd.lines_of(sink, "x") == {3, 5}


def test_reaching_definitions_through_finally():
    fn = _fn(
        """
        def f(client):
            a = 1
            try:
                a = 2
                yield client.read()
            finally:
                b = a
            c = b
        """
    )
    rd = ReachingDefinitions(fn)
    last = _stmt_at(fn, 9)
    # Only the rebind reaches the finally: plain assigns cannot raise
    # in this model, so no path enters the finally between the two
    # definitions of ``a``.
    bind_b = _stmt_at(fn, 8)
    assert rd.lines_of(bind_b, "a") == {5}
    # b's binding in the finally reaches the continuation.
    assert rd.lines_of(last, "b") == {8}


def test_assigned_names_forms():
    forms = {
        "x = 1": {"x"},
        "x, (y, z) = value": {"x", "y", "z"},
        "x += 1": {"x"},
        "x: int = 1": {"x"},
        "for i, j in pairs:\n    pass": {"i", "j"},
        "with open(p) as fh:\n    pass": {"fh"},
    }
    for source, expected in forms.items():
        stmt = ast.parse(source).body[0]
        assert assigned_names(stmt) == expected, source
