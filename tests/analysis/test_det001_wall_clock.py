"""DET001: wall-clock reads are nondeterministic."""

from repro.analysis import LintConfig

from .util import codes, lint_snippet


def test_time_time_flagged():
    findings = lint_snippet(
        """
        import time

        def stamp():
            return time.time()
        """
    )
    assert codes(findings) == ["DET001"]
    assert "time.time()" in findings[0].message


def test_perf_counter_and_monotonic_flagged():
    findings = lint_snippet(
        """
        import time

        def laps():
            return time.perf_counter(), time.monotonic()
        """
    )
    assert codes(findings) == ["DET001", "DET001"]


def test_from_import_alias_resolved():
    findings = lint_snippet(
        """
        from time import perf_counter as pc

        def lap():
            return pc()
        """
    )
    assert codes(findings) == ["DET001"]


def test_datetime_now_flagged():
    findings = lint_snippet(
        """
        from datetime import datetime

        def when():
            return datetime.now()
        """
    )
    assert codes(findings) == ["DET001"]


def test_sim_clock_not_flagged():
    findings = lint_snippet(
        """
        def elapsed(sim, start):
            return sim.now - start
        """
    )
    assert findings == []


def test_unrelated_time_attribute_not_flagged():
    findings = lint_snippet(
        """
        import time

        def pause(sim):
            return time.sleep  # referenced, not a wall-clock read
        """
    )
    assert findings == []


def test_allowlisted_path_exempt():
    config = LintConfig(allow={"DET001": ("*/obs/tracer.py",)})
    findings = lint_snippet(
        """
        import time

        def overhead():
            return time.perf_counter()
        """,
        rel_path="src/repro/obs/tracer.py",
        config=config,
    )
    assert findings == []
