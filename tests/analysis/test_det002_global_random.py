"""DET002: global random / numpy.random default-generator use."""

from .util import codes, lint_snippet


def test_global_random_draw_flagged():
    findings = lint_snippet(
        """
        import random

        def jitter():
            return random.random() * 0.5
        """
    )
    assert codes(findings) == ["DET002"]


def test_global_seed_and_shuffle_flagged():
    findings = lint_snippet(
        """
        import random

        def setup(items):
            random.seed(0)
            random.shuffle(items)
        """
    )
    assert codes(findings) == ["DET002", "DET002"]


def test_numpy_global_generator_flagged():
    findings = lint_snippet(
        """
        import numpy as np

        def noise(n):
            np.random.seed(1)
            return np.random.rand(n)
        """
    )
    assert codes(findings) == ["DET002", "DET002"]


def test_seeded_instances_not_flagged():
    findings = lint_snippet(
        """
        import random
        import numpy as np

        def make(seed):
            return random.Random(seed), np.random.default_rng(seed)
        """
    )
    assert findings == []


def test_named_stream_use_not_flagged():
    findings = lint_snippet(
        """
        def sample(sim):
            rng = sim.rng.stream("hdd-rotation")
            return rng.random()
        """
    )
    assert findings == []


def test_rng_module_allowlisted_by_default():
    findings = lint_snippet(
        """
        import random

        def bootstrap():
            random.seed(7)
        """,
        rel_path="src/repro/sim/rng.py",
    )
    assert findings == []
