"""DET003: unordered-collection iteration in sim-critical packages."""

from .util import PLAIN_PATH, SIM_PATH, codes, lint_snippet


def test_for_over_set_call_flagged():
    findings = lint_snippet(
        """
        def drain(items):
            for item in set(items):
                item.close()
        """
    )
    assert codes(findings) == ["DET003"]


def test_for_over_set_literal_flagged():
    findings = lint_snippet(
        """
        def visit(a, b):
            for item in {a, b}:
                item.touch()
        """
    )
    assert codes(findings) == ["DET003"]


def test_comprehension_over_set_flagged():
    findings = lint_snippet(
        """
        def names(servers):
            return [s.name for s in frozenset(servers)]
        """
    )
    assert codes(findings) == ["DET003"]


def test_list_of_set_flagged():
    findings = lint_snippet(
        """
        def freeze(items):
            return list(set(items))
        """
    )
    assert codes(findings) == ["DET003"]


def test_plain_popitem_flagged_ordered_popitem_not():
    findings = lint_snippet(
        """
        def evict(cache, lru):
            cache.popitem()
            lru.popitem(last=False)
        """
    )
    assert codes(findings) == ["DET003"]
    assert findings[0].line == 3


def test_sorted_set_not_flagged():
    findings = lint_snippet(
        """
        def drain(items):
            for item in sorted(set(items)):
                item.close()
        """
    )
    assert findings == []


def test_rule_is_scoped_to_sim_packages():
    snippet = """
    def drain(items):
        for item in set(items):
            item.close()
    """
    assert codes(lint_snippet(snippet, rel_path=SIM_PATH)) == ["DET003"]
    assert lint_snippet(snippet, rel_path=PLAIN_PATH) == []
    assert lint_snippet(snippet, rel_path="tests/sim/test_x.py") == []
