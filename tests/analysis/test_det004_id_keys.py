"""DET004: id() as a key, membership probe, or sort tie-breaker."""

from .util import codes, lint_snippet


def test_id_subscript_key_flagged():
    findings = lint_snippet(
        """
        def note(crashed, process, exc):
            crashed[id(process)] = exc
        """
    )
    assert codes(findings) == ["DET004"]


def test_id_in_dict_method_key_flagged():
    findings = lint_snippet(
        """
        def take(crashed, event):
            return crashed.pop(id(event), None)
        """
    )
    assert codes(findings) == ["DET004"]


def test_id_dict_literal_key_flagged():
    findings = lint_snippet(
        """
        def index(a, b):
            return {id(a): a, id(b): b}
        """
    )
    assert codes(findings) == ["DET004", "DET004"]


def test_id_membership_probe_flagged():
    findings = lint_snippet(
        """
        def seen_before(seen, obj):
            return id(obj) in seen
        """
    )
    assert codes(findings) == ["DET004"]


def test_id_sort_key_flagged():
    findings = lint_snippet(
        """
        def order(procs):
            return sorted(procs, key=lambda p: id(p))
        """
    )
    assert codes(findings) == ["DET004"]


def test_debug_repr_id_not_flagged():
    findings = lint_snippet(
        """
        def describe(res):
            return f"<Resource {id(res)}>"
        """
    )
    assert findings == []


def test_sequence_id_not_flagged():
    findings = lint_snippet(
        """
        def note(crashed, process, exc):
            crashed[process.pid] = exc
        """
    )
    assert findings == []
