"""DET005: host CPU-count reads must not leak into results."""

from .util import PLAIN_PATH, codes, lint_snippet


def test_os_cpu_count_flagged():
    findings = lint_snippet(
        """
        import os

        def shards():
            return os.cpu_count()
        """
    )
    assert codes(findings) == ["DET005"]
    assert "os.cpu_count()" in findings[0].message


def test_flagged_outside_sim_packages_too():
    findings = lint_snippet(
        """
        import os

        def shards():
            return os.cpu_count()
        """,
        rel_path=PLAIN_PATH,
    )
    assert codes(findings) == ["DET005"]


def test_multiprocessing_cpu_count_flagged():
    findings = lint_snippet(
        """
        import multiprocessing

        def width():
            return multiprocessing.cpu_count()
        """
    )
    assert codes(findings) == ["DET005"]


def test_sched_getaffinity_flagged():
    findings = lint_snippet(
        """
        import os

        def width():
            return len(os.sched_getaffinity(0))
        """
    )
    assert codes(findings) == ["DET005"]


def test_from_import_alias_resolved():
    findings = lint_snippet(
        """
        from os import cpu_count as ncpu

        def width():
            return ncpu()
        """
    )
    assert codes(findings) == ["DET005"]


def test_inline_disable_honoured():
    findings = lint_snippet(
        """
        import os

        def pool_width():
            return os.cpu_count() or 1  # simlint: disable=DET005 - pool sizing
        """
    )
    assert findings == []


def test_unrelated_os_attribute_not_flagged():
    findings = lint_snippet(
        """
        import os

        def here():
            return os.getcwd()
        """
    )
    assert findings == []
