"""DET006: tainted values flowing into scheduling/digest sinks."""

import ast
import textwrap

from repro.analysis.engine import lint_source
from repro.analysis.project import build_project

from .util import codes, lint_snippet


def _det006(findings):
    return [f for f in findings if f.code == "DET006"]


# -- true positives -----------------------------------------------------------

def test_wall_clock_into_timeout():
    findings = lint_snippet(
        """
        import time

        def pace(sim):
            delay = time.perf_counter()
            yield sim.timeout(delay)
        """
    )
    assert "DET006" in codes(findings)
    hit = _det006(findings)[0]
    assert "'delay'" in hit.message


def test_global_random_into_event_payload():
    findings = lint_snippet(
        """
        import random

        def complete(event):
            jitter = random.random()
            event.succeed(None, jitter)
        """
    )
    assert "DET006" in codes(findings)


def test_taint_through_arithmetic():
    findings = lint_snippet(
        """
        import time

        def pace(sim, start):
            elapsed = time.monotonic() - start
            yield sim.timeout(elapsed * 0.5)
        """
    )
    assert "DET006" in codes(findings)


def test_taint_into_digest():
    findings = lint_snippet(
        """
        import os

        def fingerprint(hasher):
            salt = os.urandom(8)
            hasher.update(salt)
        """
    )
    assert "DET006" in codes(findings)


def test_interprocedural_source_via_helper_module():
    """The wall-clock read lives a module away; only the project-wide
    ``returns_tainted`` summary can connect it to the sink."""
    helper = textwrap.dedent(
        """
        import time

        def stamp():
            return time.time()
        """
    )
    user = textwrap.dedent(
        """
        from .clockutil import stamp

        def pace(sim):
            mark = stamp()
            yield sim.timeout(mark)
        """
    )
    project = build_project([
        ("src/repro/sim/clockutil.py", ast.parse(helper)),
        ("src/repro/sim/pacer.py", ast.parse(user)),
    ])
    findings = lint_source(
        user, "src/repro/sim/pacer.py", project=project
    )
    assert "DET006" in codes(findings)
    # The helper itself never touches a sink: no finding there.
    helper_findings = lint_source(
        helper, "src/repro/sim/clockutil.py", project=project
    )
    assert "DET006" not in codes(helper_findings)


def test_interprocedural_sink_param():
    """Tainted value passed to a helper that forwards it into a sink:
    reported at the call site."""
    findings = lint_snippet(
        """
        import time

        def delay_by(sim, amount):
            return sim.timeout(amount)

        def pace(sim):
            lag = time.perf_counter()
            yield delay_by(sim, lag)
        """
    )
    hits = _det006(findings)
    assert len(hits) == 1
    assert "delay_by" in hits[0].message


# -- false positives ----------------------------------------------------------

def test_sim_now_is_clean():
    findings = lint_snippet(
        """
        def pace(sim, last):
            elapsed = sim.now - last
            yield sim.timeout(elapsed)
        """
    )
    assert "DET006" not in codes(findings)


def test_seeded_stream_is_clean():
    findings = lint_snippet(
        """
        import random

        def pace(sim, seed):
            rng = random.Random(seed)
            yield sim.timeout(rng.expovariate(1.0))
        """
    )
    assert "DET006" not in codes(findings)


def test_source_without_sink_is_not_det006():
    # DET001 owns the bare wall-clock read; DET006 stays quiet until
    # the value reaches a sink.
    findings = lint_snippet(
        """
        import time

        def annotate(record):
            record.wall = time.time()
        """,
        rel_path="src/repro/workloads/snippet.py",
    )
    assert "DET006" not in codes(findings)


def test_rebinding_clears_nothing_but_constant_delay_is_clean():
    findings = lint_snippet(
        """
        def pace(sim, cfg):
            yield sim.timeout(cfg.interval)
        """
    )
    assert "DET006" not in codes(findings)
