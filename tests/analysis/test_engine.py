"""Engine behaviour: suppressions, config, registry, parse errors."""

import pytest

from repro.analysis import LintConfig, RULES, Rule, register_rule
from repro.analysis.config import load_config
from repro.analysis.engine import lint_paths, lint_source
from repro.analysis.findings import PARSE_ERROR
from repro.analysis.suppressions import Suppressions

from .util import codes, lint_snippet


def test_parse_error_reported_as_finding():
    findings = lint_source("def broken(:\n", "src/repro/sim/x.py")
    assert codes(findings) == [PARSE_ERROR]
    assert "syntax error" in findings[0].message


def test_inline_disable_is_line_scoped():
    findings = lint_snippet(
        """
        import time

        def stamps():
            a = time.time()  # simlint: disable=DET001
            b = time.time()
            return a, b
        """
    )
    assert codes(findings) == ["DET001"]
    assert findings[0].line == 6


def test_file_wide_disable():
    findings = lint_snippet(
        """
        # simlint: disable-file=DET001
        import time

        def stamps():
            return time.time(), time.perf_counter()
        """
    )
    assert findings == []


def test_disable_all_sentinel():
    source = "# simlint: disable-file=all\nimport time\nx = time.time()\n"
    assert lint_source(source, "src/repro/sim/x.py") == []


def test_suppression_parsing():
    sup = Suppressions(
        "x = 1  # simlint: disable=DET001, det002\n"
        "# simlint: disable-file=SIM001\n"
    )
    assert sup.by_line == {1: {"DET001", "DET002"}}
    assert sup.file_wide == {"SIM001"}


def test_select_and_ignore():
    snippet = """
    import time

    def f(crashed, p):
        crashed[id(p)] = time.time()
    """
    both = lint_snippet(snippet)
    assert sorted(codes(both)) == ["DET001", "DET004"]
    only_det4 = lint_snippet(
        snippet, config=LintConfig(select=frozenset({"DET004"}))
    )
    assert codes(only_det4) == ["DET004"]
    no_det4 = lint_snippet(
        snippet, config=LintConfig(ignore=frozenset({"DET004"}))
    )
    assert codes(no_det4) == ["DET001"]


def test_registry_rejects_duplicate_codes():
    @register_rule
    class Probe(Rule):
        code = "TST901"
        name = "probe"
        rationale = "test-only"

    try:
        with pytest.raises(ValueError, match="duplicate rule code"):
            @register_rule
            class Clash(Rule):
                code = "TST901"
                name = "clash"
                rationale = "test-only"
    finally:
        RULES.pop("TST901", None)


def test_custom_rule_runs_through_engine():
    @register_rule
    class NoGlobals(Rule):
        code = "TST902"
        name = "no-global-statement"
        rationale = "test-only"

        def visit_Global(self, node):
            self.report(node, "global statement")

    try:
        findings = lint_snippet(
            """
            def f():
                global x
                x = 1
            """
        )
        assert "TST902" in codes(findings)
    finally:
        RULES.pop("TST902", None)


def test_load_config_reads_pyproject(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        "[tool.simlint]\n"
        'sim-packages = ["sim"]\n'
        'ignore = ["DET004"]\n'
        "[tool.simlint.allow]\n"
        'DET001 = ["legacy/*"]\n'
    )
    config = load_config(tmp_path)
    assert config.sim_packages == ("sim",)
    assert "DET004" in config.ignore
    # Explicit allows merge with (not replace) the built-in defaults.
    assert config.allowed("DET001", "legacy/old.py")
    assert config.allowed("DET001", "src/repro/obs/tracer.py")
    assert not config.is_sim_critical("src/repro/core/x.py")
    assert config.is_sim_critical("src/repro/sim/x.py")


def test_lint_paths_walks_directories(tmp_path):
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text("def f(sim):\n    return sim.now\n")
    (pkg / "dirty.py").write_text(
        "import time\n\ndef f():\n    return time.time()\n"
    )
    report = lint_paths([tmp_path / "src"], root=tmp_path)
    assert report.files_checked == 2
    assert codes(report.findings) == ["DET001"]
    assert report.findings[0].path == "src/repro/sim/dirty.py"
    assert report.counts_by_code() == {"DET001": 1}
