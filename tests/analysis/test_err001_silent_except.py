"""ERR001: bare / broad exception swallowing in sim-critical code."""

from .util import PLAIN_PATH, codes, lint_snippet


def test_bare_except_flagged():
    findings = lint_snippet(
        """
        def step(engine):
            try:
                engine.advance()
            except:
                pass
        """
    )
    assert codes(findings) == ["ERR001"]


def test_broad_except_pass_flagged():
    findings = lint_snippet(
        """
        def step(engine):
            try:
                engine.advance()
            except Exception:
                pass
        """
    )
    assert codes(findings) == ["ERR001"]


def test_broad_except_ellipsis_flagged():
    findings = lint_snippet(
        """
        def step(engine):
            try:
                engine.advance()
            except BaseException:
                ...
        """
    )
    assert codes(findings) == ["ERR001"]


def test_narrow_except_pass_not_flagged():
    findings = lint_snippet(
        """
        def lookup(table, key):
            try:
                return table[key]
            except KeyError:
                pass
            return None
        """
    )
    assert findings == []


def test_broad_except_with_handling_not_flagged():
    findings = lint_snippet(
        """
        def step(engine, log):
            try:
                engine.advance()
            except Exception as exc:
                log.append(exc)
                raise
        """
    )
    assert findings == []


def test_rule_scoped_to_sim_packages():
    snippet = """
    def step(engine):
        try:
            engine.advance()
        except:
            pass
    """
    assert lint_snippet(snippet, rel_path=PLAIN_PATH) == []
