"""LNT001: inline suppressions that no longer suppress anything."""

from repro.analysis import LintConfig

from .util import codes, lint_snippet


def _lnt001(findings):
    return [f for f in findings if f.code == "LNT001"]


def test_live_suppression_is_not_flagged():
    findings = lint_snippet(
        """
        import time

        def stamp():
            return time.time()  # simlint: disable=DET001
        """
    )
    assert findings == []


def test_stale_line_suppression_is_flagged():
    findings = lint_snippet(
        """
        def stamp(sim):
            return sim.now  # simlint: disable=DET001
        """
    )
    hits = _lnt001(findings)
    assert len(hits) == 1
    assert "stale suppression: DET001" in hits[0].message
    assert "on this line" in hits[0].message


def test_stale_file_wide_suppression_is_flagged():
    findings = lint_snippet(
        """
        # simlint: disable-file=DET002

        def clean(sim):
            return sim.now
        """
    )
    hits = _lnt001(findings)
    assert len(hits) == 1
    assert "in this file" in hits[0].message


def test_unknown_code_gets_its_own_message():
    findings = lint_snippet(
        """
        def f(sim):
            return sim.now  # simlint: disable=DET999
        """
    )
    hits = _lnt001(findings)
    assert len(hits) == 1
    assert "unknown rule code 'DET999'" in hits[0].message


def test_docstring_mention_is_not_a_directive():
    findings = lint_snippet(
        '''
        def helper():
            """Suppress findings with ``# simlint: disable=DET001``."""
            return 1
        '''
    )
    assert _lnt001(findings) == []


def test_disable_all_is_never_audited():
    findings = lint_snippet(
        """
        # simlint: disable-file=all

        def clean(sim):
            return sim.now
        """
    )
    assert findings == []


def test_directive_for_deselected_code_is_not_judged():
    # Under --select DET006, a DET001 directive cannot prove itself
    # live; it must not be reported as stale.
    findings = lint_snippet(
        """
        import time

        def stamp():
            return time.time()  # simlint: disable=DET001
        """,
        config=LintConfig(select=frozenset({"DET006", "LNT001"})),
    )
    assert findings == []


def test_multi_code_directive_reports_only_the_stale_code():
    findings = lint_snippet(
        """
        import time

        def stamp():
            return time.time()  # simlint: disable=DET001,DET002
        """
    )
    hits = _lnt001(findings)
    assert len(hits) == 1
    assert "DET002" in hits[0].message
    assert "DET001" not in hits[0].message
