"""OBS001: trace contexts / spans opened but never closed."""

from .util import codes, lint_snippet


def test_request_without_finally_finish_flagged():
    findings = lint_snippet(
        """
        def read_at(self, offset, size):
            ctx = self.layer.obs.request(0, "read", "/f", offset, size)
            result = yield from self.layer.io(ctx=ctx)
            ctx.finish()
            return result
        """
    )
    assert codes(findings) == ["OBS001"]


def test_request_with_finally_finish_not_flagged():
    findings = lint_snippet(
        """
        def read_at(self, offset, size):
            ctx = self.layer.obs.request(0, "read", "/f", offset, size)
            try:
                result = yield from self.layer.io(ctx=ctx)
            finally:
                ctx.finish()
            return result
        """
    )
    assert findings == []


def test_tracer_receiver_also_matched():
    findings = lint_snippet(
        """
        def probe(tracer):
            ctx = tracer.request(0, "read", "/f", 0, 1)
            return ctx
        """
    )
    assert codes(findings) == ["OBS001"]


def test_unrelated_request_method_not_flagged():
    findings = lint_snippet(
        """
        def fetch(session, url):
            response = session.request("GET", url)
            return response
        """
    )
    assert findings == []


def test_begin_without_end_flagged():
    findings = lint_snippet(
        """
        def serve(ctx, sim):
            span = ctx.begin("service", cat="server", component="d0")
            yield sim.timeout(1.0)
        """
    )
    assert codes(findings) == ["OBS001"]
    assert "'span'" in findings[0].message


def test_begin_with_end_not_flagged():
    findings = lint_snippet(
        """
        def serve(ctx, sim):
            span = ctx.begin("service", cat="server", component="d0")
            try:
                yield sim.timeout(1.0)
            finally:
                ctx.end(span)
        """
    )
    assert findings == []
