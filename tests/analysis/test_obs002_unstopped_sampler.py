"""OBS002: a sampler/telemetry started but never paused/stopped."""

from .util import codes, lint_snippet


def test_started_sampler_without_stop_flagged():
    findings = lint_snippet(
        """
        def run(sim, hub, writer):
            sampler = Sampler(sim, hub, writer, 1.0)
            sampler.start()
            sim.run(until=10.0)
        """
    )
    assert codes(findings) == ["OBS002"]


def test_started_sampler_with_pause_clean():
    findings = lint_snippet(
        """
        def run(sim, hub, writer):
            sampler = Sampler(sim, hub, writer, 1.0)
            sampler.start()
            sim.run(until=10.0)
            sampler.pause()
        """
    )
    assert findings == []


def test_stop_anywhere_in_module_clean():
    # The rule is module-scoped: a lifecycle helper that stops the
    # sampler elsewhere in the same module is enough.
    findings = lint_snippet(
        """
        def begin(self):
            self.sampler.start()

        def finish(self):
            self.sampler.close()
        """
    )
    assert findings == []


def test_telemetry_resume_counts_as_start():
    findings = lint_snippet(
        """
        def drive(telemetry):
            telemetry.resume()
        """
    )
    assert codes(findings) == ["OBS002"]


def test_telemetry_end_run_counts_as_stop():
    findings = lint_snippet(
        """
        def drive(telemetry):
            telemetry.resume()
            telemetry.end_run()
        """
    )
    assert findings == []


def test_non_sampler_receiver_ignored():
    findings = lint_snippet(
        """
        def run(server):
            server.start()
            worker.start()
        """
    )
    assert findings == []


def test_attribute_chain_receiver_matched():
    findings = lint_snippet(
        """
        def run(self):
            self.session.sampler.start()
        """
    )
    assert codes(findings) == ["OBS002"]


def test_two_unstopped_starts_two_findings():
    findings = lint_snippet(
        """
        def run(a_sampler, b_telemetry):
            a_sampler.start()
            b_telemetry.resume()
        """
    )
    assert codes(findings) == ["OBS002", "OBS002"]
