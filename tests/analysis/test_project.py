"""Whole-program symbol table, call graph, process closure, taint."""

import ast
import textwrap

from repro.analysis.project import build_project, module_name_of


def _project(**files):
    """Build a project from ``{"pkg/mod.py": source}`` style kwargs."""
    sources = []
    for rel_path, source in files.items():
        sources.append((rel_path, ast.parse(textwrap.dedent(source))))
    return build_project(sources)


def test_module_name_of():
    assert module_name_of("src/repro/sim/core.py") == "repro.sim.core"
    assert module_name_of("src/repro/obs/__init__.py") == "repro.obs"
    assert module_name_of("tools/gen.py") == "tools.gen"


def test_symbol_table_contains_methods_and_nested_defs():
    project = _project(**{
        "src/pkg/mod.py": """
        def top():
            def helper():
                return 1
            return helper()

        class Box:
            def get_value(self):
                return 2
        """
    })
    names = set(project.functions)
    assert "pkg.mod.top" in names
    assert "pkg.mod.top.<locals>.helper" in names
    assert "pkg.mod.Box.get_value" in names


def test_call_graph_resolves_across_modules():
    project = _project(**{
        "src/pkg/util.py": """
        def compute():
            return 1
        """,
        "src/pkg/main.py": """
        from .util import compute

        def entry():
            return compute()
        """,
    })
    entry = project.functions["pkg.main.entry"]
    assert "pkg.util.compute" in entry.calls


def test_self_method_resolution():
    project = _project(**{
        "src/pkg/mod.py": """
        class Engine:
            def step(self):
                return self._advance()

            def _advance(self):
                return 1
        """
    })
    step = project.functions["pkg.mod.Engine.step"]
    assert "pkg.mod.Engine._advance" in step.calls


def test_process_closure_spawn_and_yield_from():
    project = _project(**{
        "src/repro/core/mover.py": """
        class Mover:
            def start(self, sim):
                self._proc = sim.spawn(self._run(), name="mover")

            def _run(self):
                while True:
                    yield self.sim.timeout(1)
                    yield from self.cycle()

            def cycle(self):
                yield self.sim.timeout(0)
        """
    })
    assert project.functions["repro.core.mover.Mover._run"].is_process
    # Closure over ``yield from``:
    assert project.functions["repro.core.mover.Mover.cycle"].is_process
    # start() is not a generator, never a process.
    assert not project.functions["repro.core.mover.Mover.start"].is_process


def test_process_closure_generator_passed_by_reference():
    """The Rebuilder pattern: a generator function handed by name to a
    batch runner that spawns it."""
    project = _project(**{
        "src/repro/core/batch.py": """
        class Runner:
            def start(self, sim):
                sim.spawn(self.pass_(), name="runner")

            def pass_(self):
                items = self.pending()
                yield from self.run_batch(self.fetch_one, items)

            def run_batch(self, action, items):
                procs = [self.sim.spawn(action(i)) for i in items]
                yield self.sim.all_of(procs)

            def fetch_one(self, item):
                yield self.client.read(item)
        """
    })
    assert project.functions["repro.core.batch.Runner.fetch_one"].is_process


def test_taint_summary_fixpoint_through_helpers():
    project = _project(**{
        "src/pkg/clock.py": """
        import time

        def stamp():
            return time.time()

        def indirect():
            return stamp()

        def clean():
            return 42
        """
    })
    assert project.functions["pkg.clock.stamp"].returns_tainted
    # One interprocedural hop through the fixpoint:
    assert project.functions["pkg.clock.indirect"].returns_tainted
    assert not project.functions["pkg.clock.clean"].returns_tainted


def test_taint_sink_params():
    project = _project(**{
        "src/pkg/sched.py": """
        def delay_by(sim, amount):
            return sim.timeout(amount)
        """
    })
    info = project.functions["pkg.sched.delay_by"]
    # ``amount`` (param index 1) reaches timeout's delay position.
    assert 1 in info.sink_params


def test_fingerprint_tracks_semantics_not_text():
    base = textwrap.dedent("""
    import time

    def helper():
        return 1
    """)
    commented = base + "\n# a trailing comment changes nothing\n"
    tainted = base.replace("return 1", "return time.time()")
    fp = _project(**{"src/p/m.py": base}).fingerprint()
    assert _project(**{"src/p/m.py": commented}).fingerprint() == fp
    assert _project(**{"src/p/m.py": tainted}).fingerprint() != fp
