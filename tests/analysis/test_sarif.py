"""SARIF export: the slice GitHub code-scanning consumes."""

import json

from repro.analysis.cli import main as cli_main
from repro.analysis.engine import LintReport
from repro.analysis.findings import Finding
from repro.analysis.sarif import dump_sarif, report_to_sarif


def _report():
    return LintReport(
        findings=(
            Finding(
                path="src/repro/sim/core.py", line=10, col=5,
                code="DET006",
                message="host-dependent value 'delay' flows into a sink",
            ),
            Finding(
                path="src/repro/core/space.py", line=3, col=1,
                code="SIM004", message="reservation can leak",
            ),
        ),
        files_checked=2,
    )


def test_sarif_structure():
    log = report_to_sarif(_report())
    assert log["version"] == "2.1.0"
    (run,) = log["runs"]
    assert run["tool"]["driver"]["name"] == "simlint"
    assert len(run["results"]) == 2


def test_sarif_rule_descriptors_cover_reported_codes():
    (run,) = report_to_sarif(_report())["runs"]
    rules = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
    assert set(rules) == {"DET006", "SIM004"}
    assert rules["DET006"]["name"] == "no-tainted-sim-inputs"
    assert rules["SIM004"]["help"]["text"]


def test_sarif_result_location():
    (run,) = report_to_sarif(_report())["runs"]
    result = run["results"][0]
    assert result["ruleId"] == "DET006"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/sim/core.py"
    assert location["region"]["startLine"] == 10
    assert location["region"]["startColumn"] == 5


def test_parse_error_descriptor():
    report = LintReport(
        findings=(
            Finding(path="x.py", line=1, col=1, code="E999",
                    message="syntax error: bad"),
        ),
        files_checked=1,
    )
    (run,) = report_to_sarif(report)["runs"]
    (rule,) = run["tool"]["driver"]["rules"]
    assert rule["id"] == "E999"
    assert rule["name"] == "parse-error"


def test_clean_report_has_empty_results():
    log = report_to_sarif(LintReport(findings=(), files_checked=5))
    (run,) = log["runs"]
    assert run["results"] == []
    assert run["tool"]["driver"]["rules"] == []


def test_dump_sarif_is_valid_deterministic_json(tmp_path):
    out = tmp_path / "log.sarif"
    with out.open("w") as fh:
        dump_sarif(_report(), fh)
    first = out.read_text()
    assert json.loads(first)["runs"]
    with out.open("w") as fh:
        dump_sarif(_report(), fh)
    assert out.read_text() == first


def test_cli_sarif_out_writes_file_alongside_text(tmp_path, capsys):
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "import time\n\ndef f():\n    return time.time()\n"
    )
    sarif_path = tmp_path / "simlint.sarif"
    code = cli_main([
        str(tmp_path / "src"), "--root", str(tmp_path),
        "--sarif-out", str(sarif_path),
    ])
    assert code == 1
    log = json.loads(sarif_path.read_text())
    (run,) = log["runs"]
    assert [r["ruleId"] for r in run["results"]] == ["DET001"]
    # Text output still went to stdout.
    assert "DET001" in capsys.readouterr().out


def test_cli_format_sarif(tmp_path, capsys):
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "ok.py").write_text("def f(sim):\n    return sim.now\n")
    code = cli_main([
        str(tmp_path / "src"), "--root", str(tmp_path),
        "--format", "sarif",
    ])
    assert code == 0
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
