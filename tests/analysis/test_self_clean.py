"""The repository must lint clean — the invariant CI enforces.

If one of these fails, either a hazard was introduced (fix it) or it
is a sanctioned exception (inline ``# simlint: disable=CODE`` with a
justification, or a ``[tool.simlint.allow]`` entry — see
CONTRIBUTING.md).
"""

import pathlib

from repro.analysis import load_config
from repro.analysis.engine import lint_paths
from repro.analysis.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_src_tree_is_lint_clean():
    config = load_config(REPO_ROOT)
    report = lint_paths([REPO_ROOT / "src"], config, root=REPO_ROOT)
    assert report.files_checked > 80  # the whole package, not a subset
    assert [f.format_text() for f in report.findings] == []


def test_cli_exits_zero_on_src_and_tests():
    code = main(
        [
            "--root", str(REPO_ROOT),
            str(REPO_ROOT / "src"),
            str(REPO_ROOT / "tests"),
        ]
    )
    assert code == 0


def test_seeded_violation_turns_the_build_red(tmp_path):
    """End-to-end guard: a fresh hazard anywhere under a linted tree
    must flip the exit code (the property the CI step relies on)."""
    bad = tmp_path / "src" / "repro" / "sim" / "seeded.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "import time\n\n"
        "def stamp(crashed, p):\n"
        "    crashed[id(p)] = time.time()\n"
    )
    code = main(["--root", str(tmp_path), str(tmp_path / "src")])
    assert code == 1
