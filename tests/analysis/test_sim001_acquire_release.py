"""SIM001: resource acquire without a finally-release."""

from .util import codes, lint_snippet


def test_acquire_without_finally_flagged():
    findings = lint_snippet(
        """
        def flow(sim, device):
            grant = yield device.acquire()
            yield sim.timeout(1.0)
            device.release(grant)
        """
    )
    assert codes(findings) == ["SIM001"]


def test_acquire_released_in_except_only_flagged():
    findings = lint_snippet(
        """
        def flow(sim, device):
            grant = yield device.acquire()
            try:
                yield sim.timeout(1.0)
            except RuntimeError:
                device.release(grant)
        """
    )
    assert codes(findings) == ["SIM001"]


def test_discarded_acquire_flagged():
    findings = lint_snippet(
        """
        def flow(device):
            yield device.acquire()
        """
    )
    assert codes(findings) == ["SIM001"]
    assert "discarded" in findings[0].message


def test_finally_release_not_flagged():
    findings = lint_snippet(
        """
        def flow(sim, device):
            grant = yield device.acquire()
            try:
                yield sim.timeout(1.0)
            finally:
                device.release(grant)
        """
    )
    assert findings == []


def test_nested_grants_both_checked():
    findings = lint_snippet(
        """
        def transfer(sim, tx, rx):
            a = yield tx.acquire()
            try:
                b = yield rx.acquire()
                yield sim.timeout(1.0)
            finally:
                tx.release(a)
        """
    )
    assert codes(findings) == ["SIM001"]
    assert "'b'" in findings[0].message


def test_nested_function_scopes_are_independent():
    findings = lint_snippet(
        """
        def outer(sim, device):
            def inner():
                grant = yield device.acquire()
                try:
                    yield sim.timeout(1.0)
                finally:
                    device.release(grant)
            yield from inner()
        """
    )
    assert findings == []


def test_inline_disable_suppresses():
    findings = lint_snippet(
        """
        def handoff(device):
            grant = device.acquire()  # simlint: disable=SIM001
            return grant
        """
    )
    assert findings == []
