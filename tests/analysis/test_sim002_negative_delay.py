"""SIM002: negative delay literals in event scheduling."""

from .util import codes, lint_snippet


def test_negative_timeout_flagged():
    findings = lint_snippet(
        """
        def flow(sim):
            yield sim.timeout(-1.0)
        """
    )
    assert codes(findings) == ["SIM002"]


def test_negative_succeed_delay_flagged():
    findings = lint_snippet(
        """
        def fire(event):
            event.succeed(None, -0.5)
        """
    )
    assert codes(findings) == ["SIM002"]


def test_negative_keyword_delay_flagged():
    findings = lint_snippet(
        """
        def fire(event, exc):
            event.fail(exc, delay=-2)
        """
    )
    assert codes(findings) == ["SIM002"]


def test_zero_and_positive_delays_not_flagged():
    findings = lint_snippet(
        """
        def flow(sim, event):
            yield sim.timeout(0.0)
            event.succeed(None, 1.5)
        """
    )
    assert findings == []


def test_variable_delay_not_flagged():
    findings = lint_snippet(
        """
        def flow(sim, delta):
            yield sim.timeout(delta)
        """
    )
    assert findings == []
