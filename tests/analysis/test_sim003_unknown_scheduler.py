"""SIM003: Simulator constructed with an unknown scheduler name."""

from repro.sim.core import SCHEDULERS

from .util import codes, lint_snippet


def test_unknown_keyword_literal_flagged():
    findings = lint_snippet(
        """
        def build():
            return Simulator(seed=1, scheduler="calender")
        """
    )
    assert codes(findings) == ["SIM003"]


def test_unknown_positional_literal_flagged():
    findings = lint_snippet(
        """
        def build():
            return Simulator(0, "fifo")
        """
    )
    assert codes(findings) == ["SIM003"]


def test_attribute_call_flagged():
    findings = lint_snippet(
        """
        def build(sim_mod):
            return sim_mod.Simulator(scheduler="bogus")
        """
    )
    assert codes(findings) == ["SIM003"]


def test_known_backends_not_flagged():
    findings = lint_snippet(
        """
        def build():
            a = Simulator(scheduler="calendar")
            b = Simulator(scheduler="heap")
            c = Simulator(scheduler="auto")
            return a, b, c
        """
    )
    assert findings == []
    # The snippet above must track the engine's real backend tuple.
    assert set(SCHEDULERS) == {"auto", "calendar", "heap"}


def test_non_literal_arguments_not_flagged():
    findings = lint_snippet(
        """
        def build(name):
            return Simulator(scheduler=name or DEFAULT_SCHEDULER)
        """
    )
    assert findings == []


def test_default_construction_not_flagged():
    findings = lint_snippet(
        """
        def build():
            return Simulator(seed=42)
        """
    )
    assert findings == []


def test_inline_disable_respected():
    findings = lint_snippet(
        """
        def build():
            return Simulator(scheduler="bogus")  # simlint: disable=SIM003
        """
    )
    assert findings == []
