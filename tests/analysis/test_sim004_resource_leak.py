"""SIM004: path-sensitive reservation/registration leak detection."""

from .util import codes, lint_snippet


def _sim004(findings):
    return [f for f in findings if f.code == "SIM004"]


# -- reservation leaks: true positives ----------------------------------------

def test_reservation_with_no_release_leaks():
    findings = lint_snippet(
        """
        def fetch(self, entry):
            allocation = self.space.find_free_space(entry.d_file, 8)
            yield from self.client.write(allocation.c_offset, 8)
        """,
        rel_path="src/repro/core/snippet.py",
    )
    hits = _sim004(findings)
    assert len(hits) == 1
    assert "'allocation'" in hits[0].message


def test_narrow_handler_leaves_leak_window():
    """The original Rebuilder bug shape: only ProcessKilled releases;
    any other exception at the yield escapes holding the space."""
    findings = lint_snippet(
        """
        from ..errors import ProcessKilled

        def fetch(self, entry):
            allocation = self.space.find_free_space(entry.d_file, 8)
            if allocation is None:
                return False
            try:
                yield from self.client.write(allocation.c_offset, 8)
            except ProcessKilled:
                self.space.release(allocation.c_file,
                                   allocation.c_offset, allocation.length)
                raise
            finally:
                self.ctx.finish()
            self.dmt.add(c_offset=allocation.c_offset)
            return True
        """,
        rel_path="src/repro/core/snippet.py",
    )
    assert len(_sim004(findings)) == 1


def test_return_through_finally_without_release_leaks():
    findings = lint_snippet(
        """
        def fetch(self, entry):
            allocation = self.space.find_free_space(entry.d_file, 8)
            if allocation is None:
                return False
            try:
                yield from self.client.write(allocation.c_offset, 8)
                return True
            finally:
                self.ctx.finish()
        """,
        rel_path="src/repro/core/snippet.py",
    )
    assert len(_sim004(findings)) == 1
    assert "return" in _sim004(findings)[0].message


# -- reservation leaks: false positives ---------------------------------------

def test_broad_handler_release_then_publish_is_clean():
    """The fixed Rebuilder shape: every unwind releases in the handler,
    the clean path publishes to the DMT."""
    findings = lint_snippet(
        """
        def fetch(self, entry):
            allocation = self.space.find_free_space(entry.d_file, 8)
            if allocation is None:
                return False
            try:
                yield from self.client.write(allocation.c_offset, 8)
            except BaseException:
                self.space.release(allocation.c_file,
                                   allocation.c_offset, allocation.length)
                raise
            finally:
                self.ctx.finish()
            self.dmt.add(c_offset=allocation.c_offset)
            return True
        """,
        rel_path="src/repro/core/snippet.py",
    )
    assert _sim004(findings) == []


def test_release_in_finally_is_clean():
    findings = lint_snippet(
        """
        def probe(self, entry):
            allocation = self.space.find_free_space(entry.d_file, 8)
            try:
                yield from self.client.write(allocation.c_offset, 8)
            finally:
                self.space.release(allocation.c_file,
                                   allocation.c_offset, allocation.length)
        """,
        rel_path="src/repro/core/snippet.py",
    )
    assert _sim004(findings) == []


def test_is_none_failure_path_is_pruned():
    """On the ``allocation is None`` edge nothing is held: the early
    return must not count as a leak."""
    findings = lint_snippet(
        """
        def fetch(self, entry):
            allocation = self.space.find_free_space(entry.d_file, 8)
            if allocation is None:
                return False
            self.dmt.add(c_offset=allocation.c_offset)
            return True
        """,
        rel_path="src/repro/core/snippet.py",
    )
    assert _sim004(findings) == []


def test_returning_the_allocation_transfers_ownership():
    findings = lint_snippet(
        """
        def reserve(self, entry):
            allocation = self.space.find_free_space(entry.d_file, 8)
            return allocation
        """,
        rel_path="src/repro/core/snippet.py",
    )
    assert _sim004(findings) == []


def test_non_sim_path_is_exempt():
    findings = lint_snippet(
        """
        def fetch(self, entry):
            allocation = self.space.find_free_space(entry.d_file, 8)
            yield from self.client.write(allocation.c_offset, 8)
        """,
        rel_path="src/repro/workloads/snippet.py",
    )
    assert _sim004(findings) == []


# -- in-flight registration discipline (the PR 7 zombie-movement bug) ---------

def test_overwriting_active_batch_is_flagged():
    """Deliberate re-introduction of the PR 7 bug: assigning the batch
    list hides a concurrent runner's movements from the kill sweep in
    ``stop()``, leaving zombie movers that corrupt rebuilt state."""
    findings = lint_snippet(
        """
        class Rebuilder:
            def __init__(self):
                self._active_batch = []

            def _run_batch(self, action, items):
                procs = [self.sim.spawn(action(i)) for i in items]
                self._active_batch = procs
                try:
                    yield self.sim.all_of(procs)
                finally:
                    self._active_batch = []
        """,
        rel_path="src/repro/core/snippet.py",
    )
    hits = _sim004(findings)
    assert len(hits) >= 1
    assert any("_active_batch" in h.message for h in hits)
    # __init__'s initial definition is sanctioned: both reports are in
    # _run_batch, none on line 4.
    assert all(h.line > 4 for h in hits)


def test_additive_registration_with_finally_sweep_is_clean():
    """The fixed shape: extend + finally-deregistration."""
    findings = lint_snippet(
        """
        class Rebuilder:
            def __init__(self):
                self._active_batch = []

            def _run_batch(self, action, items):
                procs = [self.sim.spawn(action(i)) for i in items]
                self._active_batch.extend(procs)
                try:
                    yield self.sim.all_of(procs)
                finally:
                    for proc in procs:
                        self._active_batch.remove(proc)
        """,
        rel_path="src/repro/core/snippet.py",
    )
    assert _sim004(findings) == []


def test_registration_without_finally_sweep_is_flagged():
    findings = lint_snippet(
        """
        class Rebuilder:
            def _run_batch(self, action, items):
                procs = [self.sim.spawn(action(i)) for i in items]
                self._active_batch.extend(procs)
                yield self.sim.all_of(procs)
        """,
        rel_path="src/repro/core/snippet.py",
    )
    hits = _sim004(findings)
    assert len(hits) == 1
    assert "finally" in hits[0].message


def test_swap_idiom_and_counter_reset_are_exempt():
    findings = lint_snippet(
        """
        class Rebuilder:
            def stop(self):
                batch, self._active_batch = self._active_batch, []
                for proc in batch:
                    proc.kill("finalize")

            def reset_stats(self):
                self._batch_count = 0
        """,
        rel_path="src/repro/core/snippet.py",
    )
    assert _sim004(findings) == []
