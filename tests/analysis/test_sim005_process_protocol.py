"""SIM005: generator processes must speak the engine's event protocol."""

from .util import codes, lint_snippet


def _sim005(findings):
    return [f for f in findings if f.code == "SIM005"]


# -- (a) raw yields -----------------------------------------------------------

def test_process_yielding_raw_number_is_flagged():
    findings = lint_snippet(
        """
        class Worker:
            def start(self, sim):
                sim.spawn(self.run(), name="worker")

            def run(self):
                yield 0.5
        """
    )
    hits = _sim005(findings)
    assert len(hits) == 1
    assert "raw value" in hits[0].message


def test_process_yielding_generator_call_is_flagged():
    findings = lint_snippet(
        """
        class Worker:
            def start(self, sim):
                sim.spawn(self.run(), name="worker")

            def run(self):
                yield self.step()

            def step(self):
                yield self.sim.timeout(1)
        """
    )
    hits = _sim005(findings)
    assert len(hits) == 1
    assert "yield from" in hits[0].message


def test_yielding_events_and_bare_yield_are_clean():
    findings = lint_snippet(
        """
        class Worker:
            def start(self, sim):
                sim.spawn(self.run(), name="worker")

            def run(self):
                yield self.sim.timeout(1)
                if self.done:
                    return
                yield
        """
    )
    assert _sim005(findings) == []


def test_non_process_generator_may_yield_values():
    # A plain data generator (never spawned) is outside the protocol.
    findings = lint_snippet(
        """
        def chunks(total, size):
            offset = 0
            while offset < total:
                yield min(size, total - offset)
                offset += size
        """
    )
    assert _sim005(findings) == []


# -- (b) swallowed cancellation ----------------------------------------------

def test_swallowing_kill_in_loop_is_flagged():
    findings = lint_snippet(
        """
        class Worker:
            def start(self, sim):
                sim.spawn(self.run(), name="worker")

            def run(self):
                while True:
                    try:
                        yield self.sim.timeout(1)
                    except Exception:
                        self.errors += 1
        """
    )
    hits = _sim005(findings)
    assert len(hits) == 1
    assert "cancellation" in hits[0].message


def test_catching_kill_and_returning_is_clean():
    findings = lint_snippet(
        """
        from ..errors import ProcessKilled

        class Worker:
            def start(self, sim):
                sim.spawn(self.run(), name="worker")

            def run(self):
                try:
                    while True:
                        yield self.sim.timeout(1)
                except ProcessKilled:
                    return
        """
    )
    assert _sim005(findings) == []


def test_catching_kill_and_reraising_is_clean():
    findings = lint_snippet(
        """
        class Worker:
            def start(self, sim):
                sim.spawn(self.run(), name="worker")

            def run(self):
                while True:
                    try:
                        yield self.sim.timeout(1)
                    except BaseException:
                        self.cleanup()
                        raise
        """
    )
    assert _sim005(findings) == []


def test_narrow_handler_does_not_swallow_kill():
    findings = lint_snippet(
        """
        class Worker:
            def start(self, sim):
                sim.spawn(self.run(), name="worker")

            def run(self):
                while True:
                    try:
                        yield self.sim.timeout(1)
                    except ValueError:
                        self.retries += 1
        """
    )
    assert _sim005(findings) == []


# -- (c) discarded generators -------------------------------------------------

def test_calling_generator_without_consuming_is_flagged():
    findings = lint_snippet(
        """
        class Worker:
            def cycle(self):
                yield self.sim.timeout(1)

            def tick(self):
                self.cycle()
        """
    )
    hits = _sim005(findings)
    assert len(hits) == 1
    assert "discarded" in hits[0].message


def test_yield_from_and_spawn_consumption_are_clean():
    findings = lint_snippet(
        """
        class Worker:
            def start(self, sim):
                sim.spawn(self.run(), name="worker")

            def run(self):
                yield from self.cycle()

            def cycle(self):
                yield self.sim.timeout(1)
        """
    )
    assert _sim005(findings) == []
