"""Shared helpers for the simlint rule tests.

Every rule test lints a small in-memory snippet at a chosen virtual
path (the path decides sim-criticality and allowlisting), then asserts
on the reported codes.
"""

from __future__ import annotations

import textwrap

from repro.analysis import LintConfig
from repro.analysis.engine import lint_source

#: A path inside a sim-critical package (DET003/ERR001 fire here).
SIM_PATH = "src/repro/sim/snippet.py"
#: A path outside every sim-critical package.
PLAIN_PATH = "src/repro/workloads/snippet.py"


def lint_snippet(
    source: str,
    rel_path: str = SIM_PATH,
    config: LintConfig | None = None,
):
    """Lint a dedented snippet; returns the findings list."""
    return lint_source(textwrap.dedent(source), rel_path, config)


def codes(findings) -> list[str]:
    """The finding codes, in report order."""
    return [f.code for f in findings]
