"""Opt-in thousand-rank capacity sweep (nightly CI).

Deselected by default (see the ``capacity`` marker in
``pyproject.toml``); the nightly job runs ``pytest -m capacity``.
Asserts the full receipt pipeline: every sweep point completes, the
1024-rank floor is reached, and per-rank peak memory stays flat.
"""

import json

import pytest

from repro.bench.capacity_receipt import FLATNESS_LIMIT, RANKS, write_receipt

pytestmark = pytest.mark.capacity


def test_capacity_receipt_end_to_end(tmp_path):
    path = tmp_path / "BENCH_capacity.json"
    rc = write_receipt(str(path))
    receipt = json.loads(path.read_text())

    assert rc == 0, receipt["claims"]
    points = receipt["points"]
    assert [p["ranks"] for p in points] == list(RANKS)
    assert points[-1]["ranks"] >= 1024
    for point in points:
        assert point["wall_s"] > 0
        assert point["ru_maxrss_kib"] > 0
        assert point["write_mb_s"] > 0

    flat = receipt["claims"]["memory_flat"]
    assert flat["met"], flat
    assert flat["per_rank_growth_x"] <= FLATNESS_LIMIT
