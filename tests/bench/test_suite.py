"""Tests for the perf-regression harness (suite, schema, CLI gate)."""

import json

import pytest

from repro.bench import cli
from repro.bench.suite import (
    BenchResult,
    SUITE,
    compare_to_baseline,
    run_suite,
    suite_names,
)

# Microbenchmarks only: the end-to-end entry is exercised separately in
# CI's bench-smoke job (it runs a full fig6 campaign point).
MICRO = [n for n in suite_names() if n != "fig6_e2e"]


def test_suite_registers_expected_benchmarks():
    assert {
        "event_loop", "timeout_storm", "resource_handoff",
        "intervalmap_ops", "dmt_ops", "cdt_ops", "fig6_e2e",
    } <= set(suite_names())


def test_micro_suite_runs_at_tiny_scale():
    results = run_suite(scale=0.01, only=MICRO, repeats=1)
    assert [r.name for r in results] == MICRO
    for result in results:
        assert result.wall_s > 0
        assert result.units > 0
        assert result.mode in ("throughput", "wall")
        assert result.throughput > 0


def test_unknown_benchmark_rejected():
    with pytest.raises(ValueError):
        run_suite(only=["no_such_bench"])


def test_result_schema_round_trips():
    result = BenchResult(
        name="demo", wall_s=2.0, units=4000, unit="ops",
        mode="throughput", repeats=3,
    )
    data = result.as_dict()
    assert data["throughput"] == pytest.approx(2000.0)
    assert data["seconds_per_kunit"] == pytest.approx(0.5)
    assert set(data) == {
        "name", "wall_s", "units", "unit", "mode", "repeats",
        "throughput", "seconds_per_kunit",
    }


def _baseline(**overrides):
    base = {
        "name": "demo", "wall_s": 1.0, "units": 1000, "unit": "ops",
        "mode": "throughput", "repeats": 3, "throughput": 1000.0,
        "seconds_per_kunit": 1.0,
    }
    base.update(overrides)
    return {"results": [base]}


def test_compare_flags_throughput_regression():
    slow = BenchResult(name="demo", wall_s=2.0, units=1000, unit="ops",
                       mode="throughput", repeats=3)  # 500/s vs 1000/s
    regressions = compare_to_baseline([slow], _baseline(), tolerance=0.25)
    assert len(regressions) == 1 and "demo" in regressions[0]


def test_compare_is_scale_invariant_for_wall_mode():
    # Same seconds-per-unit at 10x the problem size: not a regression.
    big = BenchResult(name="demo", wall_s=10.0, units=10_000, unit="ops",
                      mode="wall", repeats=1)
    baseline = _baseline(mode="wall", seconds_per_kunit=1.0)
    assert compare_to_baseline([big], baseline, tolerance=0.25) == []
    # 2x the normalised cost: flagged.
    slow = BenchResult(name="demo", wall_s=20.0, units=10_000, unit="ops",
                       mode="wall", repeats=1)
    assert len(compare_to_baseline([slow], baseline, tolerance=0.25)) == 1


def test_compare_within_tolerance_passes():
    ok = BenchResult(name="demo", wall_s=1.2, units=1000, unit="ops",
                     mode="throughput", repeats=3)  # -17% > -25%
    assert compare_to_baseline([ok], _baseline(), tolerance=0.25) == []


def test_compare_skips_unknown_benchmarks():
    novel = BenchResult(name="brand_new", wall_s=1.0, units=10, unit="ops",
                        mode="throughput", repeats=1)
    assert compare_to_baseline([novel], _baseline()) == []


def test_cli_json_and_check_gate(tmp_path):
    out = tmp_path / "bench.json"
    rc = cli.main([
        "--scale", "0.01", "--only", "event_loop", "--repeat", "1",
        "--json", str(out),
    ])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == 1
    assert doc["scale"] == 0.01
    assert [r["name"] for r in doc["results"]] == ["event_loop"]

    # Self-comparison passes the gate...
    rc = cli.main([
        "--scale", "0.01", "--only", "event_loop", "--repeat", "1",
        "--check", str(out), "--tolerance", "0.5",
    ])
    assert rc == 0

    # ...an impossible baseline fails it.
    doc["results"][0]["throughput"] = 1e15
    impossible = tmp_path / "impossible.json"
    impossible.write_text(json.dumps(doc))
    rc = cli.main([
        "--scale", "0.01", "--only", "event_loop", "--repeat", "1",
        "--check", str(impossible), "--tolerance", "0.25",
    ])
    assert rc == 1


def test_cli_list():
    assert cli.main(["--list"]) == 0


def test_fig6_e2e_builder_shape():
    """The e2e benchmark declares sane units without being run."""
    builder, repeats = SUITE["fig6_e2e"]
    assert repeats == 1
    build, units, unit, mode = builder(0.1)
    assert mode == "wall" and unit == "requests" and units > 0
    assert callable(build)


def test_parallel_suite_matches_serial_shape():
    """--jobs distributes benchmarks but preserves suite order and the
    deterministic fields (name/units/unit/mode); wall times may differ."""
    names = ["intervalmap_ops", "dmt_ops"]
    serial = run_suite(scale=0.01, only=names, repeats=1)
    parallel = run_suite(scale=0.01, only=names, repeats=1, jobs=2)
    assert [r.name for r in parallel] == [r.name for r in serial] == names
    for s, p in zip(serial, parallel):
        assert (p.units, p.unit, p.mode, p.repeats) == (
            s.units, s.unit, s.mode, s.repeats
        )
        assert p.wall_s > 0
