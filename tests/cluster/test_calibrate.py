"""Tests for stack calibration (the §III.B profiling step)."""

import pytest

from repro.cluster import ClusterSpec
from repro.cluster.calibrate import (
    _measure_probe_beta,
    _measure_stream_beta,
    calibrate_cost_params,
)
from repro.units import KiB


def small_spec(**overrides):
    defaults = dict(num_dservers=4, num_cservers=2, num_nodes=4, seed=13)
    defaults.update(overrides)
    return ClusterSpec(**defaults)


def test_stream_beta_reflects_network_device_serialisation():
    spec = small_spec()
    read_beta, write_beta = _measure_stream_beta(spec, "hdd")
    # End-to-end streaming cost: wire + device serially, so the
    # effective rate sits below both the device and the network rate.
    assert 1 / read_beta < spec.hdd.transfer_rate
    assert 1 / read_beta < spec.network.bandwidth
    # And above half the slower leg (serialisation, not worse).
    slower = min(spec.hdd.transfer_rate, spec.network.bandwidth)
    assert 1 / read_beta > 0.4 * slower
    assert write_beta == pytest.approx(read_beta, rel=0.25)


def test_probe_beta_folds_per_request_latency():
    spec = small_spec()
    probe_read, probe_write = _measure_probe_beta(spec, "ssd", 16 * KiB)
    stream_read, _ = _measure_stream_beta(spec, "hdd")
    # Small-request probing on the SSD yields a *larger* per-byte cost
    # than HDD streaming: that inversion is what makes the selective
    # policy reject large requests (DESIGN.md calibration note 1).
    assert probe_read > stream_read
    assert probe_write > stream_read
    # Writes cost more than reads on the SSD.
    assert probe_write > probe_read


def test_probe_size_changes_effective_beta():
    spec = small_spec()
    small_read, _ = _measure_probe_beta(spec, "ssd", 4 * KiB)
    large_read, _ = _measure_probe_beta(spec, "ssd", 256 * KiB)
    # Per-op latency amortises with size.
    assert small_read > large_read


def test_calibrated_params_consistent_with_spec():
    spec = small_spec()
    params = calibrate_cost_params(spec)
    assert params.num_dservers == 4
    assert params.num_cservers == 2
    assert params.d_stripe == spec.d_stripe
    # Mechanical parameters near the HDD spec's ground truth.
    assert params.avg_rotation == pytest.approx(
        spec.hdd.avg_rotation, rel=0.5
    )
    assert 5e-3 < params.max_seek < 30e-3


def test_calibration_is_deterministic():
    a = calibrate_cost_params(small_spec(seed=21))
    # Clear the cache to force a recomputation.
    from repro.cluster.calibrate import _calibrate_cached

    _calibrate_cached.cache_clear()
    b = calibrate_cost_params(small_spec(seed=21))
    assert a.beta_c_write == b.beta_c_write
    assert a.beta_d_read == b.beta_d_read
