"""Tests for the cluster spec, calibration, builder and runner."""

import pytest

from repro.cluster import (
    ClusterSpec,
    build_cluster,
    calibrate_cost_params,
    run_workload,
)
from repro.core import CostModel
from repro.errors import ConfigError, ExperimentError
from repro.units import GiB, KiB, MiB
from repro.workloads import IORWorkload


def small_spec(**overrides):
    defaults = dict(num_dservers=4, num_cservers=2, num_nodes=4, seed=3)
    defaults.update(overrides)
    return ClusterSpec(**defaults)


# -- spec ----------------------------------------------------------------

def test_paper_testbed_defaults():
    spec = ClusterSpec.paper_testbed()
    assert spec.num_dservers == 8
    assert spec.num_cservers == 4
    assert spec.num_nodes == 32
    assert spec.d_stripe == 64 * KiB


def test_spec_validation():
    with pytest.raises(ConfigError):
        ClusterSpec(num_dservers=0)
    with pytest.raises(ConfigError):
        ClusterSpec(cache_fraction=1.5)
    with pytest.raises(ConfigError):
        ClusterSpec(cache_capacity=-1)


def test_capacity_for_fraction_and_override():
    spec = ClusterSpec(cache_fraction=0.2)
    assert spec.capacity_for(100 * MiB) == 20 * MiB
    fixed = ClusterSpec(cache_capacity=2 * GiB)
    assert fixed.capacity_for(100 * MiB) == 2 * GiB


def test_scaled_testbed_shrinks_devices():
    spec = ClusterSpec.scaled_testbed(scale=0.1)
    assert spec.hdd.capacity_bytes == 25 * GiB
    assert spec.num_dservers == 8


# -- calibration ---------------------------------------------------------

def test_calibration_lands_in_paper_regime():
    """The headline: crossover in single-digit MB for the testbed."""
    params = calibrate_cost_params(ClusterSpec.paper_testbed())
    model = CostModel(params)
    far = 1 << 40
    assert model.benefit("write", 0, 16 * KiB, far) > 0
    assert model.benefit("write", 0, 16 * MiB, far) < 0
    crossover = model.crossover_size("write", far)
    assert crossover is not None
    assert MiB < crossover < 16 * MiB


def test_calibration_beta_ordering():
    params = calibrate_cost_params(ClusterSpec.paper_testbed())
    # Streamed HDD cost is below the network-capped small-request SSD
    # cost (the reason large requests stay on DServers)...
    assert params.beta_d_write < params.beta_c_write
    # ...but the SSD pays no startup: cost-model parameters sane.
    assert params.avg_rotation > 1e-3
    assert params.max_seek > 5e-3


def test_calibration_cached():
    spec = ClusterSpec.paper_testbed()
    assert calibrate_cost_params(spec) is calibrate_cost_params(spec)


# -- builder ---------------------------------------------------------------

def test_build_stock_cluster():
    cluster = build_cluster(small_spec(), s4d=False)
    assert cluster.middleware is None
    assert cluster.cpfs is None
    assert cluster.layer is cluster.direct
    assert len(cluster.dservers) == 4
    assert cluster.cservers == []


def test_build_s4d_cluster():
    cluster = build_cluster(small_spec(), s4d=True, cache_capacity="4MB")
    assert cluster.middleware is not None
    assert cluster.layer is cluster.middleware
    assert cluster.middleware.space.capacity == 4 * MiB
    assert len(cluster.cservers) == 2
    assert cluster.dservers[0].device.kind == "hdd"
    assert cluster.cservers[0].device.kind == "ssd"


def test_build_s4d_without_cservers_rejected():
    with pytest.raises(ConfigError):
        build_cluster(small_spec(num_cservers=0), s4d=True)


def test_policy_override():
    cluster = build_cluster(
        small_spec(), s4d=True, cache_capacity=MiB, policy="always"
    )
    assert cluster.middleware.policy.name == "always"


# -- runner ------------------------------------------------------------------

@pytest.fixture(scope="module")
def ior_results():
    spec = ClusterSpec(num_dservers=4, num_cservers=2, num_nodes=4, seed=3)
    w = IORWorkload(4, "16KB", "4MB", pattern="random", seed=2)
    stock = run_workload(spec, w, s4d=False)
    s4d = run_workload(spec, w, s4d=True)
    return stock, s4d


def test_runner_produces_both_phases(ior_results):
    stock, _ = ior_results
    assert set(stock.phases) == {"write", "read1", "read2"}
    assert stock.write_bandwidth > 0
    assert stock.read_bandwidth > 0


def test_runner_s4d_beats_stock_on_random_small(ior_results):
    stock, s4d = ior_results
    assert s4d.write_bandwidth > stock.write_bandwidth
    assert s4d.read_bandwidth > stock.read_bandwidth


def test_second_read_run_faster_with_cache(ior_results):
    _, s4d = ior_results
    assert s4d.read_bandwidth >= s4d.first_read_bandwidth


def test_runner_traces_requests(ior_results):
    stock, s4d = ior_results
    assert len(stock.tracer) > 0
    assert all(r.cserver_bytes == 0 for r in stock.tracer.records)
    assert any(r.cserver_bytes > 0 for r in s4d.tracer.records)


def test_runner_rejects_empty_and_bad_phase():
    spec = small_spec()
    with pytest.raises(ExperimentError):
        run_workload(spec, [])
    w = IORWorkload(2, "16KB", "1MB")
    with pytest.raises(ExperimentError):
        run_workload(spec, w, phases=("erase",))


def test_multiple_instances_accumulate():
    spec = small_spec()
    ws = [
        IORWorkload(2, "16KB", "1MB", pattern="sequential", path="/a", seed=0),
        IORWorkload(2, "16KB", "1MB", pattern="random", path="/b", seed=1),
    ]
    result = run_workload(spec, ws, s4d=False, phases=("write",))
    assert result.phases["write"].bytes_moved == 2 * MiB
    assert len(result.phases["write"].per_instance) == 2
