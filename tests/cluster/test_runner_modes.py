"""Tests for the runner's phase modes (separated vs interleaved)."""

import pytest

from repro.errors import WorkloadError

from repro.cluster import ClusterSpec, run_workload
from repro.units import KiB, MiB
from repro.workloads import IORWorkload


def small_spec():
    return ClusterSpec(num_dservers=4, num_cservers=2, num_nodes=4, seed=17)


@pytest.fixture(scope="module")
def interleaved_result():
    w = IORWorkload(4, "16KB", "64MB", pattern="random", seed=4,
                    requests_per_rank=32)
    return run_workload(small_spec(), w, s4d=True, phases=("interleaved",))


def test_interleaved_produces_all_phases(interleaved_result):
    assert set(interleaved_result.phases) == {"write", "read1", "read2"}
    for phase in interleaved_result.phases.values():
        assert phase.bytes_moved > 0
        assert phase.duration > 0


def test_interleaved_counts_match(interleaved_result):
    expected = 4 * 32 * 16 * KiB
    assert interleaved_result.phases["write"].bytes_moved == expected
    assert interleaved_result.phases["read1"].bytes_moved == expected
    assert interleaved_result.phases["read2"].bytes_moved == expected


def test_second_read_at_least_as_fast(interleaved_result):
    first = interleaved_result.phases["read1"].bandwidth
    second = interleaved_result.phases["read2"].bandwidth
    assert second >= first * 0.9


def test_requests_per_rank_limits_volume():
    w = IORWorkload(4, "16KB", "64MB", pattern="random", seed=4,
                    requests_per_rank=8)
    assert w.data_bytes() == 4 * 8 * 16 * KiB
    # Offsets still span the whole region.
    spans = [
        max(o for o, _ in w.segments_for_rank(r)) -
        min(o for o, _ in w.segments_for_rank(r))
        for r in range(4)
    ]
    assert max(spans) > 4 * MiB


def test_requests_per_rank_validation():
    with pytest.raises(WorkloadError):
        IORWorkload(4, "16KB", "1MB", requests_per_rank=0)
    with pytest.raises(WorkloadError):
        IORWorkload(4, "16KB", "1MB", requests_per_rank=10**6)


def test_reused_cluster_keeps_state():
    from repro.cluster import build_cluster

    spec = small_spec()
    cluster = build_cluster(spec, s4d=True, cache_capacity=MiB)
    w = IORWorkload(4, "16KB", "64MB", pattern="random", seed=4,
                    requests_per_rank=16)
    first = run_workload(spec, w, cluster=cluster, phases=("write",))
    extents_after_first = len(cluster.middleware.dmt)
    second = run_workload(spec, w, cluster=cluster, phases=("write",))
    assert second.cluster is cluster
    assert len(cluster.middleware.dmt) >= extents_after_first  # state kept
