"""Shared fixture: a small S4D cluster for middleware-level tests."""

import pytest

from repro.cluster import ClusterSpec, build_cluster
from repro.units import KiB, MiB


def small_spec(**overrides):
    defaults = dict(
        num_dservers=4,
        num_cservers=2,
        num_nodes=4,
        seed=11,
        rebuild_interval=0.05,
        rebuild_budget=8 * MiB,
    )
    defaults.update(overrides)
    return ClusterSpec(**defaults)


@pytest.fixture
def s4d_cluster():
    """An S4D cluster with a 4MB cache."""
    return build_cluster(small_spec(), s4d=True, cache_capacity=4 * MiB)


@pytest.fixture
def s4d_uncoalesced_cluster():
    """Like ``s4d_cluster`` but with legacy per-fragment timing.

    For tests whose scenario depends on the uncoalesced event
    schedule (e.g. racing a write against a rebuild cycle).
    """
    return build_cluster(small_spec(coalesce=False), s4d=True,
                         cache_capacity=4 * MiB)


@pytest.fixture
def tiny_cache_cluster():
    """An S4D cluster whose cache fits only a few requests."""
    return build_cluster(small_spec(), s4d=True, cache_capacity=64 * KiB)
