"""CacheMetrics export helpers: as_dict and derived ratios."""

from repro.core.metrics import CacheMetrics


def test_ratios_are_zero_on_fresh_metrics():
    m = CacheMetrics()
    assert m.read_hit_ratio == 0.0
    assert m.write_hit_ratio == 0.0
    assert m.admission_ratio == 0.0


def test_read_hit_ratio():
    m = CacheMetrics(read_hits=3, read_misses=1)
    assert m.read_hit_ratio == 0.75


def test_write_hit_and_admission_ratios():
    m = CacheMetrics(write_hits=2, write_admitted=1, write_bounced=1)
    assert m.write_hit_ratio == 0.5
    assert m.admission_ratio == 0.5


def test_as_dict_includes_counters_and_ratios():
    m = CacheMetrics(read_hits=1, read_misses=3, flushed_bytes=4096)
    data = m.as_dict()
    assert data["read_hits"] == 1
    assert data["flushed_bytes"] == 4096
    assert data["read_hit_ratio"] == 0.25
    # Every dataclass counter is present.
    assert "bytes_to_cservers" in data
    assert "critical_admissions" in data


def test_as_dict_is_json_ready():
    import json

    round_trip = json.loads(json.dumps(CacheMetrics().as_dict()))
    assert round_trip["admission_ratio"] == 0.0
