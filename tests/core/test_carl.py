"""Tests for the CARL comparator (persistent region placement)."""

import pytest

from repro.cluster import ClusterSpec, build_cluster, calibrate_cost_params
from repro.core import CARLPlacementLayer, CostModel, plan_placement
from repro.core.carl import RegionPlan
from repro.errors import ConfigError
from repro.mpiio import MPIFile, MPIJob
from repro.units import KiB, MiB
from repro.workloads import IORWorkload, SyntheticMixWorkload


def small_spec():
    return ClusterSpec(num_dservers=4, num_cservers=2, num_nodes=4, seed=23)


def make_carl(spec, workloads, budget):
    cluster = build_cluster(spec, s4d=True, cache_capacity=0)
    model = CostModel(calibrate_cost_params(spec))
    plan = plan_placement(workloads, model, budget, region_size=MiB)
    layer = CARLPlacementLayer(
        cluster.sim, cluster.direct, cluster.cpfs, plan
    )
    return cluster, layer, plan


# -- planning ---------------------------------------------------------

def test_plan_places_random_regions_first():
    spec = small_spec()
    model = CostModel(calibrate_cost_params(spec))
    mixed = SyntheticMixWorkload(
        4, 64 * MiB, random_fraction=0.5,
        sequential_request="1MB", random_request="16KB", seed=3,
    )
    plan = plan_placement([mixed], model, budget=8 * MiB, region_size=MiB)
    assert plan.placed_bytes == 8 * MiB
    # Random ranks own the first half of the file (rank 0..1 regions).
    random_span = 2 * (64 * MiB // 4)
    placed_offsets = [
        r * MiB for r in plan.regions_for(mixed.path)
    ]
    in_random = sum(1 for off in placed_offsets if off < random_span)
    assert in_random >= 6  # placement concentrates on the random half


def test_plan_respects_budget():
    spec = small_spec()
    model = CostModel(calibrate_cost_params(spec))
    w = IORWorkload(4, 16 * KiB, 32 * MiB, pattern="random", seed=5)
    plan = plan_placement([w], model, budget=3 * MiB, region_size=MiB)
    assert plan.placed_bytes <= 3 * MiB


def test_region_plan_validation():
    with pytest.raises(ConfigError):
        RegionPlan(0)


# -- the layer ------------------------------------------------------------

def test_placed_requests_go_to_ssd():
    spec = small_spec()
    w = IORWorkload(4, 16 * KiB, 8 * MiB, pattern="random", seed=7)
    cluster, layer, plan = make_carl(spec, [w], budget=8 * MiB)
    MPIJob(cluster.sim, layer, 4).run(w.make_body("write"))
    assert layer.requests_to_ssd > 0
    # Whole file fit in the budget: everything placed.
    assert layer.requests_to_hdd == 0
    assert sum(s.bytes_served for s in cluster.cservers) > 0


def test_unplaced_requests_stay_on_hdd():
    spec = small_spec()
    w = IORWorkload(4, 16 * KiB, 8 * MiB, pattern="random", seed=7)
    cluster, layer, _ = make_carl(spec, [w], budget=2 * MiB)
    MPIJob(cluster.sim, layer, 4).run(w.make_body("write"))
    assert layer.requests_to_ssd > 0
    assert layer.requests_to_hdd > 0


def test_read_after_write_consistent_across_placement_boundary():
    spec = small_spec()
    w = IORWorkload(4, 16 * KiB, 8 * MiB, pattern="random", seed=7)
    cluster, layer, _ = make_carl(spec, [w], budget=2 * MiB)
    sim = cluster.sim

    def body():
        f = yield from MPIFile.open(layer, 0, "/x", 8 * MiB)
        # Write a range spanning placed region 0 and unplaced space.
        res_w = yield from f.write_at(512 * KiB, 2 * MiB)
        res_r = yield from f.read_at(512 * KiB, 2 * MiB)
        yield from f.close()
        return res_w, res_r

    # Place region 0 of /x only.
    layer.plan.place("/x", 0)
    from repro.intervals import IntervalMap

    index = IntervalMap()
    index.set(0, MiB, True)
    layer._placement["/x"] = index

    res_w, res_r = sim.run_process(body())
    assert res_r.segments == [
        (512 * KiB, 512 * KiB + 2 * MiB, res_w.stamp)
    ]


def test_carl_has_no_adaptivity():
    """The defining difference vs S4D: a shifted pattern stays misplaced."""
    spec = small_spec()
    first = IORWorkload(4, 16 * KiB, 32 * MiB, pattern="random", seed=7,
                        requests_per_rank=32, path="/data")
    # Same file, *different* region of interest after the shift.
    shifted = IORWorkload(4, 16 * KiB, 32 * MiB, pattern="random", seed=99,
                          requests_per_rank=32, path="/data")
    cluster, layer, _ = make_carl(spec, [first], budget=4 * MiB)
    MPIJob(cluster.sim, layer, 4).run(first.make_body("write"))
    ssd_before = layer.requests_to_ssd
    MPIJob(cluster.sim, layer, 4).run(shifted.make_body("write"))
    ssd_delta = layer.requests_to_ssd - ssd_before
    # The shifted pattern mostly misses the stale placement.
    assert ssd_delta < ssd_before
