"""Integration: two-phase collective I/O over the S4D middleware.

§II.A: "S4D-Cache can use not only these techniques [collective I/O,
data sieving] for its underlying parallel file systems but also
utilize SSDs' characteristics."  The collective layer needs only the
``fabric``/``node_for`` surface, which the middleware provides.
"""

from repro.mpiio import MPIJob, collective_write, sieve_read
from repro.units import KiB, MiB


def interleaved(rank, size, piece=16 * KiB, count=8):
    return [((i * size + rank) * piece, piece) for i in range(count)]


def test_collective_write_through_middleware(s4d_cluster):
    mw = s4d_cluster.middleware

    def body(ctx):
        f = yield from ctx.open("/coll", 16 * MiB)
        yield from collective_write(ctx, f, interleaved(ctx.rank, ctx.size))

    MPIJob(s4d_cluster.sim, mw, size=4).run(body)
    pfs_file = s4d_cluster.opfs.open("/coll")
    # All interleaved data written exactly once — through whichever
    # target the middleware chose.
    total = 4 * 8 * 16 * KiB

    def check():
        from repro.mpiio import MPIFile

        f = yield from MPIFile.open(mw, 0, "/coll", 16 * MiB)
        res = yield from f.read_at(0, total)
        yield from f.close()
        return res

    res = s4d_cluster.sim.run_process(check())
    assert all(stamp is not None for _, _, stamp in res.segments)


def test_collective_aggregation_reduces_middleware_requests(s4d_cluster):
    mw = s4d_cluster.middleware
    naive_calls = {}

    def naive(ctx):
        f = yield from ctx.open("/naive", 16 * MiB)
        before = mw.metrics.benefit_evaluations
        for off, size in interleaved(ctx.rank, ctx.size, count=16):
            yield from f.write_at(off, size)
        yield from ctx.barrier()
        naive_calls["count"] = mw.metrics.benefit_evaluations - before

    MPIJob(s4d_cluster.sim, mw, size=4).run(naive)

    coll_calls = {}

    def collective(ctx):
        f = yield from ctx.open("/coll2", 16 * MiB)
        before = mw.metrics.benefit_evaluations
        yield from collective_write(
            ctx, f, interleaved(ctx.rank, ctx.size, count=16)
        )
        coll_calls["count"] = mw.metrics.benefit_evaluations - before

    MPIJob(s4d_cluster.sim, mw, size=4).run(collective)
    # Aggregators merge 64 small requests into a few large ones.
    assert coll_calls["count"] < naive_calls["count"] / 4


def test_sieve_read_through_middleware(s4d_cluster):
    mw = s4d_cluster.middleware

    def body(ctx):
        f = yield from ctx.open("/sieve", 16 * MiB)
        yield from f.write_at(0, 2 * MiB)
        segments = [(i * 64 * KiB, 16 * KiB) for i in range(16)]
        results = yield from sieve_read(f, segments, max_hole=48 * KiB)
        assert len(results) == 1  # merged into one large read

    MPIJob(s4d_cluster.sim, mw, size=1).run(body)
