"""Property-based end-to-end consistency of the S4D middleware.

The fundamental correctness contract: *a logical read through the
middleware always returns exactly the bytes of the latest logical
writes*, no matter how requests were routed, flushed, fetched, evicted
or how the DMT recovered from a crash.  Write stamps make this
checkable byte-for-byte against a trivial dict model.
"""

from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, build_cluster
from repro.units import KiB

BLOCK = 16 * KiB
SPAN_BLOCKS = 64  # operate on a 1MB file region
FILE_HINT = SPAN_BLOCKS * BLOCK


def small_cluster(capacity_blocks: int):
    spec = ClusterSpec(
        num_dservers=2,
        num_cservers=2,
        num_nodes=2,
        seed=5,
        rebuild_interval=0.02,
    )
    return build_cluster(spec, s4d=True, cache_capacity=capacity_blocks * BLOCK)


operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("write"),
            st.integers(0, SPAN_BLOCKS - 2),
            st.integers(1, 3),  # blocks
            st.integers(0, 1),  # rank
        ),
        st.tuples(
            st.just("read"),
            st.integers(0, SPAN_BLOCKS - 2),
            st.integers(1, 3),
            st.integers(0, 1),
        ),
        st.tuples(st.just("drain"), st.just(0), st.just(0), st.just(0)),
        st.tuples(st.just("recover"), st.just(0), st.just(0), st.just(0)),
    ),
    min_size=4,
    max_size=25,
)


@given(ops=operations, capacity_blocks=st.sampled_from([0, 2, 8, 64]))
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@example(
    ops=[('write', 0, 1, 0),
     ('write', 24, 1, 0),
     ('write', 24, 2, 0),
     ('drain', 0, 0, 0),
     ('write', 5, 3, 0),
     ('read', 7, 3, 0),
     ('drain', 0, 0, 0),
     ('read', 0, 2, 0),
     ('drain', 0, 0, 0),
     ('recover', 0, 0, 0),
     ('write', 0, 1, 0),
     ('write', 0, 1, 0),
     ('drain', 0, 0, 0),
     ('write', 0, 1, 0),
     ('read', 4, 1, 0),
     ('drain', 0, 0, 0),
     ('write', 0, 3, 0),
     ('recover', 0, 0, 0)],
    capacity_blocks=64,
).via('discovered failure')  # zombie rebuilder movement across recover()
@example(
    ops=[('write', 0, 1, 0),
     ('write', 2, 1, 0),
     ('write', 11, 2, 0),
     ('drain', 0, 0, 0),
     ('write', 5, 3, 0),
     ('read', 7, 3, 0),
     ('drain', 0, 0, 0),
     ('read', 0, 2, 0),
     ('drain', 0, 0, 0),
     ('recover', 0, 0, 0),
     ('write', 1, 3, 0),
     ('read', 2, 3, 0)],
    capacity_blocks=64,
).via('discovered failure')  # zombie rebuilder movement across recover()
@example(
    ops=[('write', 0, 1, 0),
     ('write', 2, 1, 0),
     ('write', 10, 2, 0),
     ('drain', 0, 0, 0),
     ('write', 4, 2, 0),
     ('read', 7, 3, 0),
     ('drain', 0, 0, 0),
     ('read', 0, 2, 0),
     ('drain', 0, 0, 0),
     ('recover', 0, 0, 0),
     ('write', 1, 3, 0)],
    capacity_blocks=8,
).via('discovered failure')  # zombie rebuilder movement across recover()
def test_read_always_sees_latest_write(ops, capacity_blocks):
    cluster = small_cluster(capacity_blocks)
    mw = cluster.middleware
    sim = cluster.sim
    model: dict[int, int] = {}  # block index -> stamp

    def body():
        from repro.mpiio import MPIFile

        files = {}
        for rank in (0, 1):
            f = yield from MPIFile.open(mw, rank, "/data", FILE_HINT)
            files[rank] = f
        for op, block, blocks, rank in ops:
            offset = block * BLOCK
            size = min(blocks, SPAN_BLOCKS - block) * BLOCK
            if op == "write":
                res = yield from files[rank].write_at(offset, size)
                for b in range(block, block + size // BLOCK):
                    model[b] = res.stamp
            elif op == "read":
                res = yield from files[rank].read_at(offset, size)
                for seg_start, seg_end, stamp in res.segments:
                    for b in range(seg_start // BLOCK, seg_end // BLOCK):
                        assert stamp == model.get(b), (
                            f"block {b}: read stamp {stamp} != model "
                            f"{model.get(b)} after {op} at {offset}"
                        )
            elif op == "drain":
                yield from mw.rebuilder.drain()
            else:
                # Simulated power failure + middleware restart: the
                # persistent DMT survives, volatile state is rebuilt.
                mw.recover()
        # Final full-file verification.
        res = yield from files[0].read_at(0, FILE_HINT)
        for seg_start, seg_end, stamp in res.segments:
            for b in range(seg_start // BLOCK, seg_end // BLOCK):
                assert stamp == model.get(b)
        for f in files.values():
            yield from f.close()

    sim.run_process(body())
    # Space accounting never leaks: every mapped byte is accounted.
    assert mw.space.used == mw.dmt.mapped_bytes
    assert 0 <= mw.space.used <= max(capacity_blocks * BLOCK, 0)


@given(
    ops=operations,
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_stock_and_s4d_agree_on_content(ops):
    """Differential test: both systems must return identical stamps...

    ...modulo stamp identity (stamps are globally unique), so we
    compare the *pattern*: which blocks are written and by which
    logical operation index.
    """
    outcomes = []
    for s4d in (False, True):
        spec = ClusterSpec(
            num_dservers=2, num_cservers=2, num_nodes=2, seed=9,
            rebuild_interval=0.02,
        )
        cluster = build_cluster(spec, s4d=s4d, cache_capacity=8 * BLOCK)
        layer = cluster.layer
        sim = cluster.sim
        stamp_to_opindex = {}
        reads = []

        def body(layer=layer, stamp_to_opindex=stamp_to_opindex,
                 reads=reads):
            from repro.mpiio import MPIFile

            f = yield from MPIFile.open(layer, 0, "/data", FILE_HINT)
            for index, (op, block, blocks, _rank) in enumerate(ops):
                offset = block * BLOCK
                size = min(blocks, SPAN_BLOCKS - block) * BLOCK
                if op == "write":
                    res = yield from f.write_at(offset, size)
                    stamp_to_opindex[res.stamp] = index
                elif op == "read":
                    res = yield from f.read_at(offset, size)
                    reads.append(
                        [
                            (s, e, stamp_to_opindex.get(v))
                            for s, e, v in res.segments
                        ]
                    )
            yield from f.close()

        sim.run_process(body())
        outcomes.append(reads)
    assert outcomes[0] == outcomes[1]
