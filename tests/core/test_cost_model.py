"""Tests for the cost model (Eq. 1-8)."""

import random

import pytest

from repro.core import CostModel, CostParams
from repro.devices import HDD, SSD, DeviceProfiler, HDDSpec, SSDSpec
from repro.errors import ConfigError
from repro.units import GiB, KiB, MiB


@pytest.fixture(scope="module")
def profiles():
    profiler = DeviceProfiler(rng=random.Random(42))
    return (
        profiler.profile(HDD(HDDSpec())),
        profiler.profile(SSD(SSDSpec())),
    )


@pytest.fixture(scope="module")
def paper_params(profiles):
    """Paper-regime parameters: beta_C profiled at cache granularity.

    beta values here are hand-set to the values the stack profiler
    measures (see cluster.calibrate tests for the measured version):
    HDD streaming ~47MB/s end-to-end, SSD small-request effective
    ~38MB/s write / ~45MB/s read.
    """
    hdd, ssd = profiles
    return CostParams(
        num_dservers=8,
        num_cservers=4,
        d_stripe=64 * KiB,
        c_stripe=64 * KiB,
        avg_rotation=hdd.avg_rotation,
        max_seek=hdd.max_seek,
        beta_d_read=1 / (47 * MiB),
        beta_d_write=1 / (47 * MiB),
        beta_c_read=1 / (45 * MiB),
        beta_c_write=1 / (38 * MiB),
        hdd_profile=hdd,
    )


FAR = 1 << 40  # "random" distance


def test_startup_time_increases_with_servers(paper_params):
    model = CostModel(paper_params)
    # At a moderate seek distance a < b, so waiting for more servers'
    # worst-case startup costs more (Eq. 4).  (At saturating distances
    # a == b and m stops mattering — covered below.)
    t1 = model.startup_time(GiB, 1)
    t4 = model.startup_time(GiB, 4)
    t8 = model.startup_time(GiB, 8)
    assert t1 < t4 < t8
    far = [model.startup_time(FAR, m) for m in (1, 4, 8)]
    assert far[0] == far[1] == far[2]


def test_startup_time_bounded_by_a_and_b(paper_params):
    model = CostModel(paper_params)
    a = paper_params.hdd_profile.seek_time(GiB) + paper_params.avg_rotation
    b = paper_params.max_seek + paper_params.avg_rotation
    t = model.startup_time(GiB, 4)
    assert a <= t <= b
    # Eq. 4 exactly: a + m/(m+1)(b-a).
    assert t == pytest.approx(a + (4 / 5) * (b - a))


def test_random_requests_cost_more_on_dservers(paper_params):
    model = CostModel(paper_params)
    seq = model.cost_dservers("read", 0, 16 * KiB, 0)
    rand = model.cost_dservers("read", 0, 16 * KiB, 10 * GiB)
    assert rand > seq


def test_cserver_cost_ignores_randomness(paper_params):
    model = CostModel(paper_params)
    # T_C depends on size only (Eq. 7).
    assert model.cost_cservers("read", 16 * KiB) == model.cost_cservers(
        "read", 16 * KiB
    )
    assert model.cost_cservers("read", MiB) > model.cost_cservers("read", KiB)


def test_small_random_requests_have_positive_benefit(paper_params):
    model = CostModel(paper_params)
    for size in (4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB):
        assert model.benefit("write", 0, size, FAR) > 0
        assert model.benefit("read", 0, size, FAR) > 0


def test_large_requests_have_negative_benefit(paper_params):
    """The Table III regime: 4MB requests belong on DServers."""
    model = CostModel(paper_params)
    assert model.benefit("write", 0, 16 * MiB, FAR) < 0
    assert model.benefit("write", 0, 16 * MiB, 0) < 0


def test_benefit_decreases_with_size(paper_params):
    model = CostModel(paper_params)
    sizes = [16 * KiB, 256 * KiB, MiB, 4 * MiB, 16 * MiB]
    benefits = [model.benefit("write", 0, s, FAR) for s in sizes]
    assert all(b1 >= b2 for b1, b2 in zip(benefits, benefits[1:]))


def test_crossover_in_paper_regime(paper_params):
    """Write crossover should land in the single-digit-MB range."""
    model = CostModel(paper_params)
    crossover = model.crossover_size("write", FAR)
    assert crossover is not None
    assert 2 * MiB < crossover < 16 * MiB


def test_crossover_none_when_ssd_always_wins(profiles):
    hdd, ssd = profiles
    params = CostParams.from_profiles(hdd, ssd, 8, 4, 64 * KiB, 64 * KiB)
    model = CostModel(params)
    # Raw datasheet betas: SSD wins at every size (see DESIGN.md on
    # why beta_C must be profiled at cache granularity instead).
    assert model.crossover_size("write", FAR) is None


def test_cost_dservers_uses_max_subrequest(paper_params):
    model = CostModel(paper_params)
    # Request of 8 stripes over 8 servers: s_m = 1 stripe + phantom.
    aligned = model.cost_dservers("read", 0, 8 * 64 * KiB, 0)
    # Twice the data: s_m doubles, startup identical.
    double = model.cost_dservers("read", 0, 16 * 64 * KiB, 0)
    assert double > aligned
    delta = double - aligned
    assert delta == pytest.approx(
        64 * KiB * paper_params.beta_d_read, rel=0.01
    )


def test_params_validation(profiles):
    hdd, _ = profiles
    with pytest.raises(ConfigError):
        CostParams(
            num_dservers=0, num_cservers=4, d_stripe=1, c_stripe=1,
            avg_rotation=0.004, max_seek=0.015,
            beta_d_read=1e-8, beta_d_write=1e-8,
            beta_c_read=1e-8, beta_c_write=1e-8,
            hdd_profile=hdd,
        )
    with pytest.raises(ConfigError):
        CostParams(
            num_dservers=8, num_cservers=4, d_stripe=1, c_stripe=1,
            avg_rotation=0.004, max_seek=0.015,
            beta_d_read=0.0, beta_d_write=1e-8,
            beta_c_read=1e-8, beta_c_write=1e-8,
            hdd_profile=hdd,
        )
    with pytest.raises(ConfigError):
        CostParams.from_profiles(hdd, hdd, 8, 4, 1, 1, network_beta=-1)


def test_first_access_counts_as_far(paper_params):
    """Distance saturates the seek curve; huge values are equivalent."""
    model = CostModel(paper_params)
    assert model.benefit("read", 0, 16 * KiB, 1 << 40) == pytest.approx(
        model.benefit("read", 0, 16 * KiB, 1 << 50)
    )
