"""Property-based tests of the cost model's structure."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CostModel, CostParams
from repro.devices import HDD, SSD, DeviceProfiler, HDDSpec, SSDSpec
from repro.units import KiB, MiB


@pytest.fixture(scope="module")
def model():
    profiler = DeviceProfiler(rng=random.Random(42))
    hdd = profiler.profile(HDD(HDDSpec()))
    ssd = profiler.profile(SSD(SSDSpec()))
    params = CostParams(
        num_dservers=8, num_cservers=4,
        d_stripe=64 * KiB, c_stripe=64 * KiB,
        avg_rotation=hdd.avg_rotation, max_seek=hdd.max_seek,
        beta_d_read=1 / (47 * MiB), beta_d_write=1 / (47 * MiB),
        beta_c_read=1 / (45 * MiB), beta_c_write=1 / (38 * MiB),
        hdd_profile=hdd,
    )
    return CostModel(params)


sizes = st.integers(min_value=1, max_value=64 * MiB)
offsets = st.integers(min_value=0, max_value=1 << 34)
distances = st.integers(min_value=0, max_value=1 << 40)
ops = st.sampled_from(["read", "write"])


@given(op=ops, offset=offsets, size=sizes, distance=distances)
@settings(max_examples=300, deadline=None)
def test_costs_are_positive_and_finite(model, op, offset, size, distance):
    t_d = model.cost_dservers(op, offset, size, distance)
    t_c = model.cost_cservers(op, size)
    assert t_d > 0
    assert t_c > 0
    assert t_d < 100 and t_c < 100  # sane magnitudes (seconds)
    assert model.benefit(op, offset, size, distance) == pytest.approx(
        t_d - t_c
    )


@given(op=ops, offset=offsets, size=sizes,
       d1=distances, d2=distances)
@settings(max_examples=300, deadline=None)
def test_cost_monotone_in_distance(model, op, offset, size, d1, d2):
    lo, hi = sorted((d1, d2))
    assert model.cost_dservers(op, offset, size, lo) <= (
        model.cost_dservers(op, offset, size, hi) + 1e-12
    )


@given(op=ops, size1=sizes, size2=sizes, distance=distances)
@settings(max_examples=300, deadline=None)
def test_cserver_cost_monotone_in_size(model, op, size1, size2, distance):
    lo, hi = sorted((size1, size2))
    assert model.cost_cservers(op, lo) <= model.cost_cservers(op, hi) + 1e-12


@given(op=ops, offset=offsets, size=sizes, distance=distances)
@settings(max_examples=200, deadline=None)
def test_startup_bounded_by_b(model, op, offset, size, distance):
    m = model.involved_servers(offset, size)
    t_s = model.startup_time(distance, m)
    b = model.params.max_seek + model.params.avg_rotation
    assert 0 <= t_s <= b + 1e-12


@given(offset=offsets, size=st.integers(1, 4 * MiB), distance=distances)
@settings(max_examples=200, deadline=None)
def test_refinements_never_increase_cost(model, offset, size, distance):
    """Exact-m and seek-gated rotation only remove phantom cost."""
    verbatim = CostModel(
        model.params, exact_servers=False, seek_gated_rotation=False
    )
    refined_cost = model.cost_dservers("write", offset, size, distance)
    verbatim_cost = verbatim.cost_dservers("write", offset, size, distance)
    assert refined_cost <= verbatim_cost + 1e-12
