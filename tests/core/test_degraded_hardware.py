"""Robustness: correctness must not depend on device performance.

The selective policy's *decisions* change with hardware (that is the
point), but data consistency and accounting must hold on any hardware —
including pathologically slow SSDs where caching is a net loss, and
ultra-fast HDDs where nothing is ever critical.
"""

from repro.cluster import ClusterSpec, build_cluster
from repro.devices import HDDSpec, SSDSpec
from repro.mpiio import MPIJob
from repro.units import GiB, KiB, MiB


def run_mixed_job(cluster):
    mw = cluster.middleware

    def body(ctx):
        f = yield from ctx.open("/data", 4 * GiB)
        base = ctx.rank * GiB
        stamps = {}
        rng = ctx.sim.rng.fork(f"r{ctx.rank}").stream("offsets")
        offsets = [
            base + rng.randrange(0, 1024) * 16 * KiB for _ in range(12)
        ]
        for off in offsets:
            res = yield from f.write_at(off, 16 * KiB)
            stamps[off] = res.stamp
        yield from mw.rebuilder.drain()
        for off in offsets:
            res = yield from f.read_at(off, 16 * KiB)
            assert res.segments[0][2] == stamps[off], off

    MPIJob(cluster.sim, mw, 2).run(body)
    assert mw.space.used == mw.dmt.mapped_bytes


def test_pathologically_slow_ssd_stays_correct():
    """A terrible SSD: the policy may reject everything; data holds."""
    spec = ClusterSpec(
        num_dservers=2, num_cservers=2, num_nodes=2, seed=41,
        ssd=SSDSpec(
            read_latency=20e-3, write_latency=40e-3,
            read_rate=2 * MiB, write_rate=MiB,
        ),
    )
    cluster = build_cluster(spec, s4d=True, cache_capacity=4 * MiB)
    run_mixed_job(cluster)
    # With an SSD slower than the HDD path, nothing is critical.
    model = cluster.middleware.identifier.cost_model
    assert model.benefit("write", 0, 16 * KiB, 1 << 40) < 0
    assert cluster.middleware.metrics.bytes_to_cservers == 0


def test_instant_hdd_makes_cache_pointless_but_correct():
    """An HDD with no mechanics: SSD offers no benefit; data holds."""
    spec = ClusterSpec(
        num_dservers=2, num_cservers=2, num_nodes=2, seed=43,
        hdd=HDDSpec(
            rotation_period=1e-6, transfer_rate=2 * GiB,
            rotation_mode="expected",
        ),
    )
    cluster = build_cluster(spec, s4d=True, cache_capacity=4 * MiB)
    run_mixed_job(cluster)


def test_single_cserver_cluster():
    spec = ClusterSpec(
        num_dservers=4, num_cservers=1, num_nodes=2, seed=45
    )
    cluster = build_cluster(spec, s4d=True, cache_capacity=4 * MiB)
    run_mixed_job(cluster)
    assert len(cluster.cservers) == 1


def test_single_dserver_cluster():
    """M == 1: the documented Table II overestimate must not break
    anything operational."""
    spec = ClusterSpec(
        num_dservers=1, num_cservers=1, num_nodes=2, seed=47
    )
    cluster = build_cluster(spec, s4d=True, cache_capacity=4 * MiB)
    run_mixed_job(cluster)
