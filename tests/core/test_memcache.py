"""Tests for the client-side memory cache extension (§II.B future work)."""

import pytest

from repro.core import MemoryCacheLayer
from repro.errors import ConfigError
from repro.mpiio import MPIFile
from repro.units import KiB, MiB


def wrap(cluster, **kwargs):
    defaults = dict(capacity="1MB", block_size="64KB")
    defaults.update(kwargs)
    return MemoryCacheLayer(cluster.sim, cluster.layer, **defaults)


def test_repeated_reads_hit_ram(s4d_cluster):
    layer = wrap(s4d_cluster)
    sim = s4d_cluster.sim

    def body():
        f = yield from MPIFile.open(layer, 0, "/data", 64 * MiB)
        yield from f.write_at(0, 64 * KiB)
        first = yield from f.read_at(0, 64 * KiB)
        second = yield from f.read_at(0, 64 * KiB)
        yield from f.close()
        return first, second

    first, second = sim.run_process(body())
    assert layer.hits >= 1
    assert second.elapsed < first.elapsed / 5  # RAM hit is ~free
    assert second.segments == first.segments   # and consistent


def test_write_invalidates_cached_blocks(s4d_cluster):
    layer = wrap(s4d_cluster)
    sim = s4d_cluster.sim

    def body():
        f = yield from MPIFile.open(layer, 0, "/data", 64 * MiB)
        w1 = yield from f.write_at(0, 64 * KiB)
        yield from f.read_at(0, 64 * KiB)      # populate RAM
        w2 = yield from f.write_at(0, 64 * KiB)  # must invalidate
        res = yield from f.read_at(0, 64 * KiB)
        yield from f.close()
        return w1, w2, res

    w1, w2, res = sim.run_process(body())
    assert res.segments == [(0, 64 * KiB, w2.stamp)]


def test_partial_block_reads_are_consistent(s4d_cluster):
    layer = wrap(s4d_cluster)
    sim = s4d_cluster.sim

    def body():
        f = yield from MPIFile.open(layer, 0, "/data", 64 * MiB)
        w = yield from f.write_at(16 * KiB, 96 * KiB)  # crosses blocks
        yield from f.read_at(0, 128 * KiB)             # fill two blocks
        res = yield from f.read_at(32 * KiB, 32 * KiB)  # inside block 0
        yield from f.close()
        return w, res

    w, res = sim.run_process(body())
    assert res.segments == [(32 * KiB, 64 * KiB, w.stamp)]
    assert layer.hits >= 1


def test_lru_eviction_bounded(s4d_cluster):
    layer = wrap(s4d_cluster, capacity="256KB", block_size="64KB")  # 4 blocks
    sim = s4d_cluster.sim

    def body():
        f = yield from MPIFile.open(layer, 0, "/data", 64 * MiB)
        for i in range(8):
            yield from f.read_at(i * 64 * KiB, 64 * KiB)
        yield from f.close()

    sim.run_process(body())
    node_cache = layer._nodes[layer.node_for(0)]
    assert len(node_cache.blocks) == 4


def test_per_node_caches_are_independent(s4d_cluster):
    layer = wrap(s4d_cluster)
    sim = s4d_cluster.sim

    def body():
        f0 = yield from MPIFile.open(layer, 0, "/data", 64 * MiB)
        f1 = yield from MPIFile.open(layer, 1, "/data", 64 * MiB)
        yield from f0.write_at(0, 64 * KiB)
        yield from f0.read_at(0, 64 * KiB)   # node0 caches
        yield from f1.read_at(0, 64 * KiB)   # node1 misses
        yield from f0.close()
        yield from f1.close()

    sim.run_process(body())
    assert len(layer._nodes) == 2


def test_composes_with_s4d_statistics(s4d_cluster):
    """Both tiers absorb work: RAM re-reads, SSD random smalls."""
    layer = wrap(s4d_cluster)
    sim = s4d_cluster.sim
    mw = s4d_cluster.middleware

    def body():
        f = yield from MPIFile.open(layer, 0, "/data", 64 * MiB)
        for off in (0, 16 * MiB, 32 * MiB):
            yield from f.write_at(off, 16 * KiB)
        for _ in range(3):
            yield from f.read_at(0, 16 * KiB)
        yield from f.close()

    sim.run_process(body())
    assert layer.hits >= 2                  # RAM tier absorbed re-reads
    assert mw.metrics.write_admitted >= 2   # SSD tier took random writes


def test_bad_config_rejected(s4d_cluster):
    with pytest.raises(ConfigError):
        wrap(s4d_cluster, capacity="1KB", block_size="64KB")
