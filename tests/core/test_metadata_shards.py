"""Tests for §III.D distributed metadata (sharded DMT locking).

Note on fidelity: decisions themselves are synchronous in the
cooperative simulation, so sharding models the *waiting* contention a
real Berkeley-DB lock would impose, which is what the paper's remark
targets.
"""

import pytest

from repro.cluster import ClusterSpec, build_cluster
from repro.errors import CacheError
from repro.mpiio import MPIJob
from repro.units import GiB, KiB, MiB


def make_cluster(shards, sync_cost=200e-6):
    spec = ClusterSpec(
        num_dservers=4, num_cservers=2, num_nodes=8, seed=3,
        metadata_shards=shards, metadata_sync_cost=sync_cost,
    )
    return build_cluster(spec, s4d=True, cache_capacity=64 * MiB)


def run_contended_job(cluster):
    """8 ranks write small requests in far-apart file regions."""

    def body(ctx):
        f = yield from ctx.open("/data", 8 * GiB)
        base = ctx.rank * GiB
        for i in range(24):
            yield from f.write_at(base + i * 16 * KiB, 16 * KiB)

    stats = MPIJob(cluster.sim, cluster.layer, 8).run(body)
    return MPIJob.makespan(stats)


def test_lock_key_sharding():
    mw = make_cluster(shards=4).middleware
    assert mw._lock_key("/f", 0) != mw._lock_key("/f", 300 * MiB)
    assert mw._lock_key("/f", 0) == mw._lock_key("/f", 10 * MiB)
    single = make_cluster(shards=1).middleware
    assert single._lock_key("/f", 0) == "/f"
    assert single._lock_key("/f", 300 * MiB) == "/f"


def test_sharding_reduces_lock_contention():
    unsharded = make_cluster(shards=1)
    run_contended_job(unsharded)
    sharded = make_cluster(shards=8)
    run_contended_job(sharded)
    assert (
        sharded.middleware.locks.contentions
        < unsharded.middleware.locks.contentions
    )


def test_sharding_preserves_consistency():
    cluster = make_cluster(shards=8)

    def body(ctx):
        f = yield from ctx.open("/data", 8 * GiB)
        base = ctx.rank * GiB
        stamps = {}
        for i in range(8):
            res = yield from f.write_at(base + i * 16 * KiB, 16 * KiB)
            stamps[i] = res.stamp
        for i in range(8):
            res = yield from f.read_at(base + i * 16 * KiB, 16 * KiB)
            assert res.segments[0][2] == stamps[i]

    MPIJob(cluster.sim, cluster.layer, 8).run(body)
    mw = cluster.middleware
    assert mw.space.used == mw.dmt.mapped_bytes


def test_bad_shard_count_rejected():
    with pytest.raises(CacheError):
        make_cluster(shards=0)
