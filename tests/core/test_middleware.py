"""Integration tests: the S4D middleware on a small simulated cluster.

These exercise the full §IV.B call paths — open/read/write/close via
MPIFile handles — and verify routing, consistency and the Fig. 11
pass-through behaviour.
"""

from repro.mpiio import MPIFile, MPIJob
from repro.units import KiB, MiB


def run(cluster, body):
    return cluster.sim.run_process(body())


def test_open_creates_cache_file(s4d_cluster):
    mw = s4d_cluster.middleware

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", MiB)
        yield from f.close()

    run(s4d_cluster, body)
    assert s4d_cluster.cpfs.exists("/data.s4dcache")
    assert s4d_cluster.opfs.exists("/data")


def test_rebuilder_lifecycle_follows_open_close(s4d_cluster):
    mw = s4d_cluster.middleware

    def body():
        assert not mw.rebuilder.running
        f1 = yield from MPIFile.open(mw, 0, "/a", MiB)
        assert mw.rebuilder.running
        f2 = yield from MPIFile.open(mw, 1, "/b", MiB)
        yield from f1.close()
        assert mw.rebuilder.running  # one file still open
        yield from f2.close()
        assert not mw.rebuilder.running  # last close stops the helper

    run(s4d_cluster, body)


def test_small_random_write_redirected_to_cservers(s4d_cluster):
    mw = s4d_cluster.middleware

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * MiB)
        # Random-looking offsets: far apart.
        for offset in (0, 32 * MiB, 5 * MiB, 48 * MiB):
            yield from f.write_at(offset, 16 * KiB)
        yield from f.close()

    run(s4d_cluster, body)
    m = mw.metrics
    assert m.write_admitted >= 3  # first may be far too, all critical
    assert m.bytes_to_cservers > 0
    assert sum(s.bytes_served for s in s4d_cluster.cservers) > 0


def test_large_write_stays_on_dservers(s4d_cluster):
    mw = s4d_cluster.middleware

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * MiB)
        yield from f.write_at(0, 16 * MiB)
        yield from f.close()

    run(s4d_cluster, body)
    m = mw.metrics
    assert m.requests_to_dservers == 1
    assert m.bytes_to_cservers == 0
    assert len(mw.dmt) == 0


def test_read_after_redirected_write_is_consistent(s4d_cluster):
    """The core consistency property: stamps flow through the cache."""
    mw = s4d_cluster.middleware

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * MiB)
        wres = yield from f.write_at(32 * MiB, 16 * KiB)
        rres = yield from f.read_at(32 * MiB, 16 * KiB)
        yield from f.close()
        return wres, rres

    wres, rres = run(s4d_cluster, body)
    assert rres.segments == [(32 * MiB, 32 * MiB + 16 * KiB, wres.stamp)]
    # And it really was a cache hit.
    assert mw.metrics.read_hits == 1


def test_read_miss_marks_cflag_and_rebuilder_fetches(s4d_cluster):
    mw = s4d_cluster.middleware

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * MiB)
        # Write non-critically (large), then read a small piece: miss.
        yield from f.write_at(0, 8 * MiB)
        mw.identifier.reset_streams()
        first = yield from f.read_at(17 * 16 * KiB, 16 * KiB)
        assert mw.metrics.read_hits == 0
        # Let the rebuilder fetch it.
        yield from mw.rebuilder.drain()
        second = yield from f.read_at(17 * 16 * KiB, 16 * KiB)
        yield from f.close()
        return first, second

    first, second = run(s4d_cluster, body)
    assert mw.metrics.fetches >= 1
    assert mw.metrics.read_hits == 1
    # Fetched data carries the original write's stamps.
    assert first.segments == second.segments


def test_flush_writes_dirty_data_back(s4d_cluster):
    mw = s4d_cluster.middleware

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * MiB)
        wres = yield from f.write_at(32 * MiB, 16 * KiB)
        yield from mw.rebuilder.drain()
        yield from f.close()
        return wres

    wres = run(s4d_cluster, body)
    assert mw.metrics.flushes == 1
    extents = mw.dmt.all_extents()
    assert len(extents) == 1 and not extents[0].dirty
    # DServer copy now holds the written stamp.
    d_handle = s4d_cluster.opfs.open("/data")
    assert d_handle.content.read(32 * MiB, 16 * KiB) == [
        (32 * MiB, 32 * MiB + 16 * KiB, wres.stamp)
    ]


def test_write_hit_redirties_flushed_extent(s4d_cluster):
    mw = s4d_cluster.middleware

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * MiB)
        yield from f.write_at(32 * MiB, 16 * KiB)
        yield from mw.rebuilder.drain()
        wres2 = yield from f.write_at(32 * MiB, 16 * KiB)
        rres = yield from f.read_at(32 * MiB, 16 * KiB)
        yield from f.close()
        return wres2, rres

    wres2, rres = run(s4d_cluster, body)
    assert mw.metrics.write_hits == 1
    assert rres.segments[0][2] == wres2.stamp


def test_eviction_preserves_consistency(tiny_cache_cluster):
    """Cache fits 4x16KB; writes beyond evict flushed extents, and
    reads of evicted ranges fall back to DServers with correct data."""
    cluster = tiny_cache_cluster
    mw = cluster.middleware
    offsets = [i * 4 * MiB for i in range(12)]

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * MiB)
        stamps = {}
        for off in offsets:
            res = yield from f.write_at(off, 16 * KiB)
            stamps[off] = res.stamp
            yield from mw.rebuilder.drain()  # flush promptly
        results = {}
        for off in offsets:
            res = yield from f.read_at(off, 16 * KiB)
            results[off] = res.segments
        yield from f.close()
        return stamps, results

    stamps, results = run(cluster, body)
    assert cluster.middleware.space.evictions > 0
    for off in offsets:
        assert results[off] == [(off, off + 16 * KiB, stamps[off])], off


def test_partial_hit_read_merges_segments(s4d_cluster):
    mw = s4d_cluster.middleware

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * MiB)
        w1 = yield from f.write_at(32 * MiB, 16 * KiB)          # cached
        w2 = yield from f.write_at(32 * MiB + 16 * KiB, 8 * MiB)  # large
        rres = yield from f.read_at(32 * MiB, 32 * KiB)
        yield from f.close()
        return w1, w2, rres

    w1, w2, rres = run(s4d_cluster, body)
    assert rres.segments == [
        (32 * MiB, 32 * MiB + 16 * KiB, w1.stamp),
        (32 * MiB + 16 * KiB, 32 * MiB + 32 * KiB, w2.stamp),
    ]


def test_zero_capacity_passes_everything_through(s4d_cluster):
    from repro.cluster import build_cluster
    from tests.core.conftest import small_spec

    cluster = build_cluster(small_spec(), s4d=True, cache_capacity=0)
    mw = cluster.middleware

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * MiB)
        for off in (0, 32 * MiB, 5 * MiB):
            yield from f.write_at(off, 16 * KiB)
            yield from f.read_at(off, 16 * KiB)
        yield from f.close()

    cluster.sim.run_process(body())
    assert mw.metrics.bytes_to_cservers == 0
    assert mw.metrics.write_bounced == 3


def test_never_policy_acts_like_stock(s4d_cluster):
    from repro.cluster import build_cluster
    from tests.core.conftest import small_spec

    cluster = build_cluster(
        small_spec(), s4d=True, cache_capacity=4 * MiB, policy="never"
    )
    mw = cluster.middleware

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * MiB)
        yield from f.write_at(32 * MiB, 16 * KiB)
        yield from f.read_at(32 * MiB, 16 * KiB)
        yield from f.close()

    cluster.sim.run_process(body())
    assert mw.metrics.bytes_to_cservers == 0
    assert len(mw.identifier.cdt) == 0
    assert len(mw.dmt) == 0


def test_metadata_bytes_estimate(s4d_cluster):
    mw = s4d_cluster.middleware

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * MiB)
        for i in range(5):
            yield from f.write_at(i * 8 * MiB, 16 * KiB)
        yield from f.close()

    run(s4d_cluster, body)
    # 6 fields * 4 bytes per entry, as §V.E.1 estimates.
    assert mw.metadata_bytes() == len(mw.dmt) * 24
    assert len(mw.dmt) >= 4


def test_middleware_via_mpijob(s4d_cluster):
    """Whole stack through MPIJob with several ranks."""
    mw = s4d_cluster.middleware

    def body(ctx):
        f = yield from ctx.open("/shared", 64 * MiB)
        offset = ctx.rank * 16 * MiB
        yield from f.write_at(offset, 16 * KiB)
        yield from ctx.barrier()
        yield from f.read_at(offset, 16 * KiB)

    stats = MPIJob(s4d_cluster.sim, mw, size=4).run(body)
    assert all(s.bytes_written == 16 * KiB for s in stats)
    assert mw.metrics.read_hits == 4  # all ranks hit their own writes
    assert not mw.rebuilder.running  # finalize stopped the helper
