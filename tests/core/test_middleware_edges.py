"""Edge-case tests for middleware lifecycle and accounting."""

import pytest

from repro.errors import CacheError, MPIIOError
from repro.mpiio import MPIFile
from repro.units import KiB, MiB


def test_reopen_after_close(s4d_cluster):
    mw = s4d_cluster.middleware

    def body():
        f1 = yield from MPIFile.open(mw, 0, "/data", MiB)
        w = yield from f1.write_at(0, 16 * KiB)
        yield from f1.close()
        f2 = yield from MPIFile.open(mw, 0, "/data", MiB)
        r = yield from f2.read_at(0, 16 * KiB)
        yield from f2.close()
        return w, r

    w, r = s4d_cluster.sim.run_process(body())
    # Cache state survives close/reopen within a run.
    assert r.segments[0][2] == w.stamp
    assert mw.metrics.read_hits == 1


def test_multiple_files_share_cache_capacity(s4d_cluster):
    mw = s4d_cluster.middleware

    def body():
        f_a = yield from MPIFile.open(mw, 0, "/a", 64 * MiB)
        f_b = yield from MPIFile.open(mw, 0, "/b", 64 * MiB)
        yield from f_a.write_at(32 * MiB, 16 * KiB)
        yield from f_b.write_at(48 * MiB, 16 * KiB)
        yield from f_a.close()
        yield from f_b.close()

    s4d_cluster.sim.run_process(body())
    assert s4d_cluster.cpfs.exists("/a.s4dcache")
    assert s4d_cluster.cpfs.exists("/b.s4dcache")
    assert mw.space.used == 2 * 16 * KiB
    files = {e.d_file for e in mw.dmt.all_extents()}
    assert files == {"/a", "/b"}


def test_seek_and_pointer_io_through_middleware(s4d_cluster):
    mw = s4d_cluster.middleware

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * MiB)
        f.seek(32 * MiB)
        w = yield from f.write(16 * KiB)
        assert f.position == 32 * MiB + 16 * KiB
        f.seek(-16 * KiB, "cur")
        r = yield from f.read(16 * KiB)
        yield from f.close()
        return w, r

    w, r = s4d_cluster.sim.run_process(body())
    assert r.segments[0][2] == w.stamp


def test_close_unopened_rejected(s4d_cluster):
    mw = s4d_cluster.middleware

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", MiB)
        yield from f.close()
        with pytest.raises(MPIIOError):
            yield from mw.close(0, f.handle)

    s4d_cluster.sim.run_process(body())


def test_metadata_sync_cost_charged(s4d_cluster):
    mw = s4d_cluster.middleware
    sim = s4d_cluster.sim

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * MiB)
        # Critical write: allocates -> one DMT mutation minimum.
        res = yield from f.write_at(32 * MiB, 16 * KiB)
        yield from f.close()
        return res

    res = sim.run_process(body())
    assert res.elapsed >= mw.lookup_overhead + mw.metadata_sync_cost


def test_negative_capacity_rejected(s4d_cluster):
    from repro.core import S4DCacheMiddleware

    with pytest.raises(CacheError):
        S4DCacheMiddleware(
            s4d_cluster.sim,
            s4d_cluster.direct,
            s4d_cluster.cpfs,
            mw_cost_model(s4d_cluster),
            capacity=-1,
        )


def mw_cost_model(cluster):
    return cluster.middleware.identifier.cost_model


def test_capacity_string_parse():
    from repro.cluster import build_cluster
    from tests.core.conftest import small_spec

    cluster = build_cluster(small_spec(), s4d=True, cache_capacity="2MB")
    assert cluster.middleware.space.capacity == 2 * MiB
