"""Model fidelity: Eq. 1-8 predictions vs measured request times.

The Data Identifier decides from the *analytical* model; the simulated
cluster is the ground truth.  These tests quantify how well the two
agree — not to equality (the model ignores queueing and network
framing), but in the ways decisions depend on: ordering across request
classes and rough magnitude.  Reads are used as the probe op: isolated
writes absorb into the servers' write-behind and measure memory, not
the device path the model predicts.
"""

import statistics

import pytest

from repro.cluster import ClusterSpec, build_cluster, calibrate_cost_params
from repro.core import CostModel
from repro.units import GiB, KiB, MiB

FAR = 1 << 40


@pytest.fixture(scope="module")
def setup():
    spec = ClusterSpec.paper_testbed(num_nodes=4)
    model = CostModel(calibrate_cost_params(spec))
    return spec, model


def measure_dserver(spec, size, pattern, count=24):
    """Mean isolated request time on the stock system."""
    cluster = build_cluster(spec, s4d=False)
    sim = cluster.sim
    client = cluster.direct.client_for(0)
    handle = cluster.opfs.create("/probe", 4 * GiB)
    rng = sim.rng.stream("probe")

    def body():
        times = []
        offset = 0
        for i in range(count):
            if pattern == "random":
                offset = rng.randrange(0, (2 * GiB) // size) * size
            else:
                offset = i * size
            result = yield from client.read(handle, offset, size)
            times.append(result.elapsed)
        return times

    times = sim.run_process(body())
    return statistics.mean(times[2:])  # skip warmup


def measure_cserver(spec, size, count=24):
    cluster = build_cluster(spec, s4d=True, cache_capacity=GiB)
    sim = cluster.sim
    client = cluster.middleware.cpfs_client_for(0)
    handle = cluster.cpfs.create("/probe.cache", 4 * GiB)
    rng = sim.rng.stream("probe")

    def body():
        times = []
        for _ in range(count):
            offset = rng.randrange(0, (2 * GiB) // size) * size
            result = yield from client.read(handle, offset, size)
            times.append(result.elapsed)
        return times

    times = sim.run_process(body())
    return statistics.mean(times[2:])


def test_model_orders_request_classes_like_the_simulator(setup):
    spec, model = setup
    classes = {
        "small-random-hdd": (
            measure_dserver(spec, 16 * KiB, "random"),
            model.cost_dservers("read", 0, 16 * KiB, FAR),
        ),
        "small-ssd": (
            measure_cserver(spec, 16 * KiB),
            model.cost_cservers("read", 16 * KiB),
        ),
        "large-hdd": (
            measure_dserver(spec, 4 * MiB, "sequential"),
            model.cost_dservers("read", 0, 4 * MiB, 4 * MiB),
        ),
        "large-ssd": (
            measure_cserver(spec, 4 * MiB),
            model.cost_cservers("read", 4 * MiB),
        ),
    }
    # The decision-relevant orderings agree.
    measured = {k: v[0] for k, v in classes.items()}
    predicted = {k: v[1] for k, v in classes.items()}
    for costs in (measured, predicted):
        assert costs["small-ssd"] < costs["small-random-hdd"]
        assert costs["large-ssd"] > costs["small-ssd"]


def test_ssd_prediction_is_tight(setup):
    """No mechanics, no caching: T_C should be within ~2x of measured."""
    spec, model = setup
    for size in (16 * KiB, 256 * KiB, 1 * MiB):
        measured = measure_cserver(spec, size)
        predicted = model.cost_cservers("read", size)
        assert predicted == pytest.approx(measured, rel=1.0), (
            size, measured, predicted
        )


def test_hdd_random_prediction_within_factor(setup):
    """Seek+rotation dominated: model within a small factor."""
    spec, model = setup
    measured = measure_dserver(spec, 16 * KiB, "random")
    predicted = model.cost_dservers("read", 0, 16 * KiB, FAR)
    # The model is intentionally conservative (worst-case startup term);
    # it must not *under*estimate by much, nor overestimate wildly.
    assert predicted > 0.5 * measured
    assert predicted < 10 * measured


def test_benefit_sign_matches_measured_advantage(setup):
    """Positive B <=> the SSD path is actually faster in simulation."""
    spec, model = setup
    for size in (16 * KiB, 256 * KiB):
        advantage = measure_dserver(spec, size, "random") - measure_cserver(
            spec, size
        )
        predicted = model.benefit("read", 0, size, FAR)
        assert (advantage > 0) == (predicted > 0)
