"""Tests for admission policies."""

import pytest

from repro.core import (
    AlwaysCachePolicy,
    NeverCachePolicy,
    SelectivePolicy,
    SizeThresholdPolicy,
    make_policy,
)
from repro.errors import ConfigError
from repro.units import KiB


def test_selective_follows_benefit_sign():
    p = SelectivePolicy()
    assert p.is_critical("write", 0, 16 * KiB, benefit=0.001)
    assert not p.is_critical("write", 0, 16 * KiB, benefit=0.0)
    assert not p.is_critical("write", 0, 16 * KiB, benefit=-0.001)


def test_always_and_never():
    assert AlwaysCachePolicy().is_critical("read", 0, 1, -1.0)
    assert not NeverCachePolicy().is_critical("read", 0, 1, 1.0)


def test_size_threshold():
    p = SizeThresholdPolicy("64KB")
    assert p.is_critical("write", 0, 64 * KiB, -1.0)
    assert not p.is_critical("write", 0, 64 * KiB + 1, 1.0)
    assert p.name == f"size:{64 * KiB}"
    with pytest.raises(ConfigError):
        SizeThresholdPolicy(0)


def test_make_policy_specs():
    assert make_policy("selective").name == "selective"
    assert make_policy("always").name == "always"
    assert make_policy("never").name == "never"
    assert make_policy("size:8KB").threshold == 8 * KiB
    existing = SelectivePolicy()
    assert make_policy(existing) is existing
    with pytest.raises(ConfigError):
        make_policy("psychic")
