"""Tests for the Rebuilder: flush, fetch, priorities, interference."""

from repro.mpiio import MPIFile
from repro.units import KiB, MiB


def open_and_write(mw, offsets, size=16 * KiB):
    """Write critical data at the given far-apart offsets."""

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * MiB)
        stamps = {}
        for off in offsets:
            res = yield from f.write_at(off, size)
            stamps[off] = res.stamp
        return f, stamps

    return body


def test_periodic_cycles_run_while_files_open(s4d_cluster):
    mw = s4d_cluster.middleware
    sim = s4d_cluster.sim

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * MiB)
        yield from f.write_at(32 * MiB, 16 * KiB)
        yield sim.timeout(2.0)  # several rebuild intervals pass
        yield from f.close()

    sim.run_process(body())
    assert mw.rebuilder.cycles >= 2
    assert mw.metrics.flushes == 1


def test_flush_marks_clean_and_space_becomes_evictable(s4d_cluster):
    mw = s4d_cluster.middleware
    sim = s4d_cluster.sim

    def body():
        f, _ = yield from open_and_write(mw, [0, 8 * MiB, 24 * MiB])()
        yield from mw.rebuilder.drain()
        yield from f.close()

    sim.run_process(body())
    assert all(not e.dirty for e in mw.dmt.all_extents())
    assert mw.metrics.flushed_bytes == 3 * 16 * KiB


def test_redirty_during_flush_keeps_extent_dirty(s4d_cluster):
    """A write racing the flush must not be marked clean away."""
    mw = s4d_cluster.middleware
    sim = s4d_cluster.sim

    def body():
        f, _ = yield from open_and_write(mw, [32 * MiB])()
        extent = mw.dmt.all_extents()[0]
        flush = sim.spawn(mw.rebuilder.flush_pass(1 << 30))
        # Re-dirty while the flush I/O is in flight.
        yield sim.timeout(1e-4)
        res = yield from f.write_at(32 * MiB, 16 * KiB)
        yield flush
        yield from f.close()
        return extent, res

    extent, res = sim.run_process(body())
    assert extent.dirty  # re-dirtied write survives the flush
    # And a subsequent read still sees the newest stamp.

    def check():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * MiB)
        rres = yield from f.read_at(32 * MiB, 16 * KiB)
        yield from f.close()
        return rres

    rres = sim.run_process(check())
    assert rres.segments[0][2] == res.stamp


def test_fetch_skips_already_mapped_segments(s4d_uncoalesced_cluster):
    # Legacy (uncoalesced) timing: the scenario needs the mapping
    # write to land before a periodic rebuild cycle fetches the
    # second critical mark, which coalesced round timing outpaces.
    mw = s4d_uncoalesced_cluster.middleware
    sim = s4d_uncoalesced_cluster.sim

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * MiB)
        # Populate DServers with a large write, then read two small
        # pieces to mark them critical; cache one by writing it.
        yield from f.write_at(0, 4 * MiB)
        mw.identifier.reset_streams()
        yield from f.read_at(0, 16 * KiB)
        yield from f.read_at(2 * MiB, 16 * KiB)
        yield from f.write_at(0, 16 * KiB)  # now mapped by the write
        fetched_before = mw.metrics.fetched_bytes
        yield from mw.rebuilder.drain()
        yield from f.close()
        return fetched_before

    sim.run_process(body())
    # Only the unmapped mark was fetched.
    assert mw.metrics.fetched_bytes == 16 * KiB
    assert mw.dmt.fully_mapped("/data", 2 * MiB, 16 * KiB)


def test_fetch_does_not_evict_equal_benefit_data(tiny_cache_cluster):
    """The churn guard: equal-benefit fetches never displace data."""
    mw = tiny_cache_cluster.middleware
    sim = tiny_cache_cluster.sim
    offsets = [i * 8 * MiB for i in range(8)]  # 8 x 16KB > 64KB cache

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * MiB)
        yield from f.write_at(0, 8 * MiB)  # backing data, non-critical
        mw.identifier.reset_streams()
        for off in offsets:
            yield from f.read_at(off, 16 * KiB)  # all marked critical
        yield from mw.rebuilder.drain()
        evictions_after_drain = mw.space.evictions
        yield from mw.rebuilder.drain()  # second drain: no churn
        yield from f.close()
        return evictions_after_drain

    evictions_after_drain = sim.run_process(body())
    assert mw.space.evictions == evictions_after_drain
    # Cache is full (4 extents of 16KB).
    assert mw.space.free_bytes < 16 * KiB


def test_low_priority_rebuild_defers_to_foreground(s4d_cluster):
    """Rebuilder I/O must not delay a concurrent app request much."""
    mw = s4d_cluster.middleware
    sim = s4d_cluster.sim

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * MiB)
        # Queue a lot of dirty data.
        for i in range(16):
            yield from f.write_at(i * 3 * MiB, 16 * KiB)
        # Foreground solo latency (cache hit).
        r1 = yield from f.read_at(0, 16 * KiB)
        # Start a flush storm, then issue a foreground request.
        flush = sim.spawn(mw.rebuilder.flush_pass(1 << 30))
        yield sim.timeout(1e-3)
        r2 = yield from f.read_at(3 * MiB, 16 * KiB)
        yield flush
        yield from f.close()
        return r1.elapsed, r2.elapsed

    solo, contended = sim.run_process(body())
    # Low priority keeps the slowdown bounded (one in-service request
    # of head-of-line blocking at worst, not the whole flush queue).
    assert contended < solo + 0.1


def test_drain_converges_and_reports_cycles(s4d_cluster):
    mw = s4d_cluster.middleware
    sim = s4d_cluster.sim

    def body():
        f, _ = yield from open_and_write(mw, [0, 16 * MiB])()
        yield from mw.rebuilder.drain()
        yield from f.close()

    sim.run_process(body())
    assert mw.rebuilder.cycles >= 1


def test_stop_is_idempotent(s4d_cluster):
    mw = s4d_cluster.middleware
    sim = s4d_cluster.sim

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", MiB)
        mw.rebuilder.stop()
        mw.rebuilder.stop()
        mw.rebuilder.start()
        yield from f.close()

    sim.run_process(body())
    assert not mw.rebuilder.running
