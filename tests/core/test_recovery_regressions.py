"""Regression tests for crash-recovery bugs found by hypothesis.

The original failure: ``DMT.recover()`` replaced extent object
identities while the space manager's recency list and in-flight
Rebuilder movements still referenced the old objects, producing
double-frees of cache ranges.  Recovery is now middleware-level
(:meth:`S4DCacheMiddleware.recover`): volatile state is rebuilt from
the persistent table, like a real restart.
"""

from repro.cluster import ClusterSpec, build_cluster
from repro.mpiio import MPIFile
from repro.units import KiB

BLOCK = 16 * KiB


def tiny_cluster(capacity_blocks=2):
    spec = ClusterSpec(
        num_dservers=2, num_cservers=2, num_nodes=2, seed=5,
        rebuild_interval=0.02,
    )
    return build_cluster(spec, s4d=True, cache_capacity=capacity_blocks * BLOCK)


def run_sequence(ops, capacity_blocks=2):
    cluster = tiny_cluster(capacity_blocks)
    mw = cluster.middleware

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * BLOCK)
        stamps = {}
        for op, block, blocks in ops:
            offset, size = block * BLOCK, blocks * BLOCK
            if op == "write":
                res = yield from f.write_at(offset, size)
                for b in range(block, block + blocks):
                    stamps[b] = res.stamp
            elif op == "read":
                res = yield from f.read_at(offset, size)
                for s, e, v in res.segments:
                    for b in range(s // BLOCK, e // BLOCK):
                        assert v == stamps.get(b)
            elif op == "drain":
                yield from mw.rebuilder.drain()
            else:
                mw.recover()
        yield from f.close()
        return stamps

    cluster.sim.run_process(body())
    assert mw.space.used == mw.dmt.mapped_bytes
    return cluster


def test_recover_after_pending_fetch_marks():
    """Falsifying example 1 (hypothesis): recover with queued fetches."""
    run_sequence([
        ("write", 1, 1),
        ("write", 1, 2),
        ("write", 0, 2),
        ("drain", 0, 0),
        ("write", 0, 3),
        ("read", 6, 3),
        ("recover", 0, 0),
    ])


def test_recover_between_drain_and_read_marks():
    """Falsifying example 2: drain, overwrite, read-miss, recover."""
    run_sequence([
        ("write", 1, 2),
        ("drain", 0, 0),
        ("write", 0, 2),
        ("read", 3, 3),
        ("recover", 0, 0),
    ])


def test_double_recover_is_idempotent():
    cluster = run_sequence([
        ("write", 0, 2),
        ("drain", 0, 0),
        ("recover", 0, 0),
        ("recover", 0, 0),
        ("read", 0, 2),
    ])
    mw = cluster.middleware
    assert mw.dmt.mapped_bytes == mw.space.used


def test_recover_restarts_running_rebuilder():
    cluster = tiny_cluster()
    mw = cluster.middleware

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * BLOCK)
        assert mw.rebuilder.running
        mw.recover()
        assert mw.rebuilder.running  # restarted, since a file is open
        yield from f.close()
        assert not mw.rebuilder.running

    cluster.sim.run_process(body())


def test_recovered_state_serves_hits():
    """Cached data survives the crash and still serves reads."""
    cluster = tiny_cluster(capacity_blocks=8)
    mw = cluster.middleware

    def body():
        f = yield from MPIFile.open(mw, 0, "/data", 64 * BLOCK)
        res_w = yield from f.write_at(0, BLOCK)
        mw.recover()
        before = mw.metrics.read_hits
        res_r = yield from f.read_at(0, BLOCK)
        yield from f.close()
        return res_w, res_r, mw.metrics.read_hits - before

    res_w, res_r, hits = cluster.sim.run_process(body())
    assert hits == 1
    assert res_r.segments[0][2] == res_w.stamp
