"""Tests for Algorithm 1 (the Redirector) — pure decision logic."""

import pytest

from repro.core import CDT, DMT, CacheSpace, Redirector
from repro.core.redirector import TO_CSERVERS, TO_DSERVERS
from repro.errors import CacheError

DF, CF = "/data", "/data.s4dcache"


def make_redirector(capacity=1000):
    dmt = DMT()
    cdt = CDT()
    space = CacheSpace(capacity)
    space.register_cache_file(CF)
    return Redirector(dmt, cdt, space, None), dmt, cdt, space


def admit(cdt, offset, size, benefit=1.0):
    return cdt.admit(DF, offset, size, benefit)


# -- write paths (Algorithm 1 lines 2-15) --------------------------------

def test_critical_write_miss_goes_to_cservers():
    r, dmt, cdt, space = make_redirector()
    entry = admit(cdt, 0, 100)
    plan = r.route("write", DF, CF, 0, 100, entry)
    assert [s.target for s in plan.steps] == [TO_CSERVERS]
    assert plan.steps[0].extent.dirty
    assert space.used == 100
    assert dmt.fully_mapped(DF, 0, 100)
    assert plan.metadata_mutations >= 1


def test_noncritical_write_miss_goes_to_dservers():
    r, dmt, _, space = make_redirector()
    plan = r.route("write", DF, CF, 0, 100, None)
    assert [s.target for s in plan.steps] == [TO_DSERVERS]
    assert space.used == 0
    assert len(dmt) == 0


def test_critical_write_without_space_bounces_to_dservers():
    r, _, cdt, _ = make_redirector(capacity=50)
    entry = admit(cdt, 0, 100)
    plan = r.route("write", DF, CF, 0, 100, entry)
    assert [s.target for s in plan.steps] == [TO_DSERVERS]
    assert r.metrics.write_bounced == 1


def test_write_uses_clean_space_when_free_exhausted():
    r, dmt, cdt, space = make_redirector(capacity=100)
    e1 = admit(cdt, 0, 100)
    first = r.route("write", DF, CF, 0, 100, e1)
    first.release()  # the request's data movement completed
    # Flush happened: extent now clean.
    extent = dmt.lookup(DF, 0, 100)[0][2]
    dmt.set_dirty(extent, False)
    e2 = admit(cdt, 200, 100)
    plan = r.route("write", DF, CF, 200, 100, e2)
    assert [s.target for s in plan.steps] == [TO_CSERVERS]
    assert space.evictions == 1
    assert dmt.lookup(DF, 0, 100)[0][2] is None  # old mapping evicted


def test_pinned_extent_not_evicted_until_release():
    r, dmt, cdt, space = make_redirector(capacity=100)
    e1 = admit(cdt, 0, 100)
    in_flight = r.route("write", DF, CF, 0, 100, e1)
    extent = dmt.lookup(DF, 0, 100)[0][2]
    dmt.set_dirty(extent, False)  # flushed, clean — but still pinned
    e2 = admit(cdt, 200, 100)
    blocked = r.route("write", DF, CF, 200, 100, e2)
    assert [s.target for s in blocked.steps] == [TO_DSERVERS]  # bounced
    assert space.evictions == 0
    in_flight.release()
    blocked.release()
    e3 = admit(cdt, 400, 100)
    plan = r.route("write", DF, CF, 400, 100, e3)
    assert [s.target for s in plan.steps] == [TO_CSERVERS]
    assert space.evictions == 1
    plan.release()
    assert plan.release() is None  # idempotent


def test_hit_segments_survive_same_request_eviction_pressure():
    """Regression: a miss segment's eviction must not invalidate a hit
    segment of the same request (found by hypothesis)."""
    r, dmt, cdt, space = make_redirector(capacity=200)
    e1 = admit(cdt, 100, 200)
    first = r.route("write", DF, CF, 100, 200, e1)
    first.release()
    extent = dmt.lookup(DF, 100, 200)[0][2]
    dmt.set_dirty(extent, False)  # flushed
    # Overlapping write: [0,100) misses (needs eviction), [100,300) hits.
    e2 = admit(cdt, 0, 300)
    plan = r.route("write", DF, CF, 0, 300, e2)
    plan.release()
    # The hit re-dirtied the extent before the miss looked for space,
    # so the extent was NOT evicted; the miss bounced instead.
    assert dmt.lookup(DF, 100, 300)[0][2] is extent
    assert extent.dirty
    targets = [(s.target, s.d_offset) for s in plan.steps]
    assert (TO_CSERVERS, 100) in targets
    assert (TO_DSERVERS, 0) in targets
    assert space.evictions == 0
    # And no ghost records: in-memory table matches the durable store.
    assert len(dmt.db) == len(dmt)


def test_write_hit_redirects_and_redirties():
    r, dmt, cdt, _ = make_redirector()
    entry = admit(cdt, 0, 100)
    first = r.route("write", DF, CF, 0, 100, entry)
    extent = first.steps[0].extent
    dmt.set_dirty(extent, False)  # pretend flushed
    epoch = extent.dirty_epoch
    second = r.route("write", DF, CF, 0, 100, None)  # hit needs no CDT
    assert [s.target for s in second.steps] == [TO_CSERVERS]
    assert second.steps[0].c_offset == first.steps[0].c_offset
    assert extent.dirty
    assert extent.dirty_epoch == epoch + 1
    assert r.metrics.write_hits == 1


# -- read paths (lines 16-22) ---------------------------------------------

def test_read_hit_served_from_cservers():
    r, _, cdt, _ = make_redirector()
    entry = admit(cdt, 0, 100)
    write = r.route("write", DF, CF, 0, 100, entry)
    plan = r.route("read", DF, CF, 0, 100, None)
    assert [s.target for s in plan.steps] == [TO_CSERVERS]
    assert plan.steps[0].c_offset == write.steps[0].c_offset
    assert r.metrics.read_hits == 1


def test_read_miss_goes_to_dservers_and_sets_cflag():
    r, _, cdt, space = make_redirector()
    entry = admit(cdt, 0, 100)
    plan = r.route("read", DF, CF, 0, 100, entry)
    assert [s.target for s in plan.steps] == [TO_DSERVERS]
    assert entry.c_flag  # lazy fetch requested
    assert space.used == 0  # no synchronous caching of read misses
    assert r.metrics.lazy_fetch_marks == 1


def test_noncritical_read_miss_plain():
    r, _, _, _ = make_redirector()
    plan = r.route("read", DF, CF, 0, 100, None)
    assert [s.target for s in plan.steps] == [TO_DSERVERS]
    assert plan.metadata_mutations == 0


def test_read_cflag_set_only_once():
    r, _, cdt, _ = make_redirector()
    entry = admit(cdt, 0, 100)
    p1 = r.route("read", DF, CF, 0, 100, entry)
    p2 = r.route("read", DF, CF, 0, 100, entry)
    assert p1.metadata_mutations == 1
    assert p2.metadata_mutations == 0


# -- partial overlap (the segment generalisation) ----------------------

def test_partial_hit_splits_request():
    r, _, cdt, _ = make_redirector()
    entry = admit(cdt, 0, 100)
    r.route("write", DF, CF, 0, 100, entry)
    # Read [50, 200): 50-100 hits, 100-200 misses.
    plan = r.route("read", DF, CF, 50, 150, None)
    assert [(s.target, s.d_offset, s.size) for s in plan.steps] == [
        (TO_CSERVERS, 50, 50),
        (TO_DSERVERS, 100, 100),
    ]
    # Hit segment addressed at the right cache offset.
    assert plan.steps[0].c_offset == 50
    assert r.metrics.requests_split == 1


def test_partial_write_fills_gap_with_new_extent():
    r, dmt, cdt, space = make_redirector()
    e1 = admit(cdt, 0, 100)
    r.route("write", DF, CF, 0, 100, e1)
    big = admit(cdt, 0, 300)
    plan = r.route("write", DF, CF, 0, 300, big)
    assert [s.target for s in plan.steps] == [TO_CSERVERS, TO_CSERVERS]
    assert dmt.fully_mapped(DF, 0, 300)
    assert space.used == 300


def test_request_distribution_counts_majority():
    r, _, cdt, _ = make_redirector()
    entry = admit(cdt, 0, 100)
    r.route("write", DF, CF, 0, 100, entry)      # all CServers
    r.route("write", DF, CF, 500, 100, None)     # all DServers
    r.route("read", DF, CF, 0, 250, None)        # 100 C / 150 D -> D
    d_pct, c_pct = r.metrics.request_distribution()
    assert (d_pct, c_pct) == (pytest.approx(200 / 3), pytest.approx(100 / 3))


def test_unknown_op_rejected():
    r, _, _, _ = make_redirector()
    with pytest.raises(CacheError):
        r.route("erase", DF, CF, 0, 100, None)


def test_byte_accounting():
    r, _, cdt, _ = make_redirector()
    entry = admit(cdt, 0, 100)
    r.route("write", DF, CF, 0, 100, entry)
    r.route("write", DF, CF, 500, 50, None)
    assert r.metrics.bytes_to_cservers == 100
    assert r.metrics.bytes_to_dservers == 50
