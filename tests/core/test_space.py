"""Tests for the cache space manager (free lists + clean LRU)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CacheSpace, DMT
from repro.core.space import _FileSpace
from repro.errors import CacheError

CF = "/f.cache"


def make_space(capacity=1000):
    space = CacheSpace(capacity)
    space.register_cache_file(CF)
    return space


def test_free_space_allocation():
    space = make_space(100)
    a = space.find_free_space(CF, 60)
    assert a is not None and a.c_offset == 0 and a.length == 60
    b = space.find_free_space(CF, 40)
    assert b is not None and b.c_offset == 60
    assert space.find_free_space(CF, 1) is None
    assert space.free_bytes == 0


def test_release_makes_space_reusable():
    space = make_space(100)
    a = space.find_free_space(CF, 100)
    space.release(CF, a.c_offset, a.length)
    assert space.free_bytes == 100
    assert space.find_free_space(CF, 100) is not None


def test_double_release_rejected():
    space = make_space(100)
    a = space.find_free_space(CF, 50)
    space.release(CF, a.c_offset, a.length)
    with pytest.raises(CacheError):
        space.release(CF, a.c_offset, a.length)


def test_clean_space_evicts_lru():
    space = make_space(100)
    dmt = DMT()
    exts = []
    for i in range(4):
        a = space.find_free_space(CF, 25)
        ext = dmt.add("/f", i * 25, CF, a.c_offset, 25, dirty=False)
        space.touch(ext)
        exts.append(ext)
    # Touch extent 0 so extent 1 becomes LRU.
    space.touch(exts[0])
    alloc = space.find_clean_space(CF, 25, dmt)
    assert alloc is not None
    assert dmt.lookup("/f", 25, 25)[0][2] is None  # extent 1 evicted
    assert dmt.lookup("/f", 0, 25)[0][2] is exts[0]
    assert space.evictions == 1


def test_clean_space_skips_dirty_extents():
    space = make_space(100)
    dmt = DMT()
    for i in range(4):
        a = space.find_free_space(CF, 25)
        ext = dmt.add("/f", i * 25, CF, a.c_offset, 25, dirty=(i < 2))
        space.touch(ext)
    # Extents 0,1 dirty; 2,3 clean -> two evictions possible.
    assert space.find_clean_space(CF, 25, dmt) is not None
    assert space.find_clean_space(CF, 25, dmt) is not None
    assert space.find_clean_space(CF, 25, dmt) is None  # only dirty left
    assert space.evictions == 2


def test_evict_dirty_rejected():
    space = make_space(100)
    dmt = DMT()
    a = space.find_free_space(CF, 50)
    ext = dmt.add("/f", 0, CF, a.c_offset, 50, dirty=True)
    with pytest.raises(CacheError):
        space.evict(ext, dmt)


def test_zero_capacity_never_allocates():
    space = CacheSpace(0)
    space.register_cache_file(CF)
    assert space.find_free_space(CF, 1) is None
    assert space.find_clean_space(CF, 1, DMT()) is None


def test_unregistered_file_rejected():
    space = CacheSpace(100)
    with pytest.raises(CacheError):
        space.find_free_space("/ghost", 10)


def test_bad_sizes_rejected():
    space = make_space()
    with pytest.raises(CacheError):
        space.find_free_space(CF, 0)
    with pytest.raises(CacheError):
        CacheSpace(-1)


def test_capacity_shared_across_cache_files():
    space = CacheSpace(100)
    space.register_cache_file("/a.cache")
    space.register_cache_file("/b.cache")
    assert space.find_free_space("/a.cache", 70) is not None
    # Global budget leaves only 30 for the other file.
    assert space.find_free_space("/b.cache", 40) is None
    assert space.find_free_space("/b.cache", 30) is not None


# -- _FileSpace free list ------------------------------------------------

def test_filespace_coalesce_neighbours():
    fs = _FileSpace(100)
    a = fs.allocate(30)
    b = fs.allocate(30)
    c = fs.allocate(40)
    assert (a, b, c) == (0, 30, 60)
    fs.free(0, 30)
    fs.free(60, 40)
    fs.free(30, 30)  # merges with both sides
    assert fs.largest_hole() == 100
    assert fs.free_bytes == 100


def test_filespace_first_fit():
    fs = _FileSpace(100)
    fs.allocate(10)       # [0,10)
    b = fs.allocate(20)   # [10,30)
    fs.allocate(10)       # [30,40)
    fs.free(b, 20)
    # First fit: a 15-byte request lands in the 20-byte hole at 10.
    assert fs.allocate(15) == 10


def test_filespace_free_out_of_bounds():
    fs = _FileSpace(100)
    with pytest.raises(CacheError):
        fs.free(90, 20)


@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=1, max_value=30)),
        max_size=60,
    )
)
@settings(max_examples=200, deadline=None)
def test_filespace_accounting_invariant(ops):
    """Allocated + free == limit at all times; no overlap ever."""
    fs = _FileSpace(500)
    live: list[tuple[int, int]] = []
    for do_alloc, size in ops:
        if do_alloc or not live:
            offset = fs.allocate(size)
            if offset is not None:
                for o, s in live:
                    assert offset + size <= o or offset >= o + s
                live.append((offset, size))
        else:
            offset, size = live.pop(0)
            fs.free(offset, size)
        assert fs.free_bytes == 500 - sum(s for _, s in live)


# ---------------------------------------------------------------------------
# victim-scan negative-result cache
# ---------------------------------------------------------------------------

def _fill_dirty(space, dmt, n=4, size=25):
    exts = []
    for i in range(n):
        a = space.find_free_space(CF, size)
        ext = dmt.add("/f", i * size, CF, a.c_offset, size, dirty=True)
        space.touch(ext)
        exts.append(ext)
    return exts


def test_victim_cache_sees_clean_transition():
    """A cached 'no victim' answer must be dropped when an extent is
    flushed clean (the rebuilder calls invalidate_evictable)."""
    space = make_space(100)
    dmt = DMT()
    exts = _fill_dirty(space, dmt)
    assert space.find_clean_space(CF, 25, dmt) is None
    # Cached: still None without any state change.
    assert space.find_clean_space(CF, 25, dmt) is None
    dmt.set_dirty(exts[1], False)
    space.invalidate_evictable()
    alloc = space.find_clean_space(CF, 25, dmt)
    assert alloc is not None
    assert space.evictions == 1


def test_victim_cache_sees_unpin():
    space = make_space(100)
    dmt = DMT()
    exts = []
    for i in range(4):
        a = space.find_free_space(CF, 25)
        ext = dmt.add("/f", i * 25, CF, a.c_offset, 25, dirty=False)
        ext.pins = 1
        space.touch(ext)
        exts.append(ext)
    assert space.find_clean_space(CF, 25, dmt) is None
    exts[2].pins = 0
    space.invalidate_evictable()
    alloc = space.find_clean_space(CF, 25, dmt)
    assert alloc is not None
    assert dmt.lookup("/f", 50, 25)[0][2] is None  # extent 2 evicted


def test_victim_cache_sees_new_extent_via_touch():
    space = make_space(100)
    dmt = DMT()
    exts = _fill_dirty(space, dmt, n=4)  # capacity full, all dirty
    assert space.find_clean_space(CF, 25, dmt) is None
    # Replace one dirty extent with a fresh *clean* one (as a completed
    # flush+refetch would): the touch of the new extent must invalidate
    # the cached "no victim" answer on its own.
    dmt.remove(exts[3])
    space.forget(exts[3])
    space.release(CF, exts[3].c_offset, exts[3].length)
    a = space.find_free_space(CF, 25)
    ext = dmt.add("/f", 75, CF, a.c_offset, 25, dirty=False)
    space.touch(ext)
    alloc = space.find_clean_space(CF, 25, dmt)
    assert alloc is not None
    assert space.evictions == 1  # the new clean extent was the victim


def test_victim_cache_threshold_monotonicity():
    """A 'nothing below T' answer also covers any threshold <= T, but a
    higher threshold must rescan."""
    space = make_space(100)
    dmt = DMT()
    for i in range(4):
        a = space.find_free_space(CF, 25)
        ext = dmt.add("/f", i * 25, CF, a.c_offset, 25, dirty=False,
                      benefit=5.0)
        space.touch(ext)
    h = space.fetch_hysteresis
    # All benefits are 5.0: a fetch valued 5.0*h only displaces
    # benefit < 5.0 -> no victim; cached for anything weaker.
    assert space.find_clean_space(CF, 25, dmt, min_benefit=5.0 * h) is None
    assert space.find_clean_space(CF, 25, dmt, min_benefit=4.0 * h) is None
    # A strictly more valuable fetch must rescan and find a victim.
    assert space.find_clean_space(CF, 25, dmt, min_benefit=5.1 * h) is not None


def test_victim_cache_devaluation_path():
    """Lowering a resident's benefit (route-hit reassignment) plus the
    redirector's invalidate call exposes it to pending fetches."""
    space = make_space(100)
    dmt = DMT()
    exts = []
    for i in range(4):
        a = space.find_free_space(CF, 25)
        ext = dmt.add("/f", i * 25, CF, a.c_offset, 25, dirty=False,
                      benefit=5.0)
        space.touch(ext)
        exts.append(ext)
    h = space.fetch_hysteresis
    assert space.find_clean_space(CF, 25, dmt, min_benefit=5.0 * h) is None
    exts[0].benefit = 1.0
    space.invalidate_evictable()
    alloc = space.find_clean_space(CF, 25, dmt, min_benefit=5.0 * h)
    assert alloc is not None
    assert dmt.lookup("/f", 0, 25)[0][2] is None  # devalued extent evicted
