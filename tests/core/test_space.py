"""Tests for the cache space manager (free lists + clean LRU)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CacheSpace, DMT
from repro.core.space import _FileSpace
from repro.errors import CacheError

CF = "/f.cache"


def make_space(capacity=1000):
    space = CacheSpace(capacity)
    space.register_cache_file(CF)
    return space


def test_free_space_allocation():
    space = make_space(100)
    a = space.find_free_space(CF, 60)
    assert a is not None and a.c_offset == 0 and a.length == 60
    b = space.find_free_space(CF, 40)
    assert b is not None and b.c_offset == 60
    assert space.find_free_space(CF, 1) is None
    assert space.free_bytes == 0


def test_release_makes_space_reusable():
    space = make_space(100)
    a = space.find_free_space(CF, 100)
    space.release(CF, a.c_offset, a.length)
    assert space.free_bytes == 100
    assert space.find_free_space(CF, 100) is not None


def test_double_release_rejected():
    space = make_space(100)
    a = space.find_free_space(CF, 50)
    space.release(CF, a.c_offset, a.length)
    with pytest.raises(CacheError):
        space.release(CF, a.c_offset, a.length)


def test_clean_space_evicts_lru():
    space = make_space(100)
    dmt = DMT()
    exts = []
    for i in range(4):
        a = space.find_free_space(CF, 25)
        ext = dmt.add("/f", i * 25, CF, a.c_offset, 25, dirty=False)
        space.touch(ext)
        exts.append(ext)
    # Touch extent 0 so extent 1 becomes LRU.
    space.touch(exts[0])
    alloc = space.find_clean_space(CF, 25, dmt)
    assert alloc is not None
    assert dmt.lookup("/f", 25, 25)[0][2] is None  # extent 1 evicted
    assert dmt.lookup("/f", 0, 25)[0][2] is exts[0]
    assert space.evictions == 1


def test_clean_space_skips_dirty_extents():
    space = make_space(100)
    dmt = DMT()
    for i in range(4):
        a = space.find_free_space(CF, 25)
        ext = dmt.add("/f", i * 25, CF, a.c_offset, 25, dirty=(i < 2))
        space.touch(ext)
    # Extents 0,1 dirty; 2,3 clean -> two evictions possible.
    assert space.find_clean_space(CF, 25, dmt) is not None
    assert space.find_clean_space(CF, 25, dmt) is not None
    assert space.find_clean_space(CF, 25, dmt) is None  # only dirty left
    assert space.evictions == 2


def test_evict_dirty_rejected():
    space = make_space(100)
    dmt = DMT()
    a = space.find_free_space(CF, 50)
    ext = dmt.add("/f", 0, CF, a.c_offset, 50, dirty=True)
    with pytest.raises(CacheError):
        space.evict(ext, dmt)


def test_zero_capacity_never_allocates():
    space = CacheSpace(0)
    space.register_cache_file(CF)
    assert space.find_free_space(CF, 1) is None
    assert space.find_clean_space(CF, 1, DMT()) is None


def test_unregistered_file_rejected():
    space = CacheSpace(100)
    with pytest.raises(CacheError):
        space.find_free_space("/ghost", 10)


def test_bad_sizes_rejected():
    space = make_space()
    with pytest.raises(CacheError):
        space.find_free_space(CF, 0)
    with pytest.raises(CacheError):
        CacheSpace(-1)


def test_capacity_shared_across_cache_files():
    space = CacheSpace(100)
    space.register_cache_file("/a.cache")
    space.register_cache_file("/b.cache")
    assert space.find_free_space("/a.cache", 70) is not None
    # Global budget leaves only 30 for the other file.
    assert space.find_free_space("/b.cache", 40) is None
    assert space.find_free_space("/b.cache", 30) is not None


# -- _FileSpace free list ------------------------------------------------

def test_filespace_coalesce_neighbours():
    fs = _FileSpace(100)
    a = fs.allocate(30)
    b = fs.allocate(30)
    c = fs.allocate(40)
    assert (a, b, c) == (0, 30, 60)
    fs.free(0, 30)
    fs.free(60, 40)
    fs.free(30, 30)  # merges with both sides
    assert fs.largest_hole() == 100
    assert fs.free_bytes == 100


def test_filespace_first_fit():
    fs = _FileSpace(100)
    fs.allocate(10)       # [0,10)
    b = fs.allocate(20)   # [10,30)
    fs.allocate(10)       # [30,40)
    fs.free(b, 20)
    # First fit: a 15-byte request lands in the 20-byte hole at 10.
    assert fs.allocate(15) == 10


def test_filespace_free_out_of_bounds():
    fs = _FileSpace(100)
    with pytest.raises(CacheError):
        fs.free(90, 20)


@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=1, max_value=30)),
        max_size=60,
    )
)
@settings(max_examples=200, deadline=None)
def test_filespace_accounting_invariant(ops):
    """Allocated + free == limit at all times; no overlap ever."""
    fs = _FileSpace(500)
    live: list[tuple[int, int]] = []
    for do_alloc, size in ops:
        if do_alloc or not live:
            offset = fs.allocate(size)
            if offset is not None:
                for o, s in live:
                    assert offset + size <= o or offset >= o + s
                live.append((offset, size))
        else:
            offset, size = live.pop(0)
            fs.free(offset, size)
        assert fs.free_bytes == 500 - sum(s for _, s in live)
