"""Tests for the CDT and DMT."""

import pytest

from repro.core import CDT, DMT
from repro.errors import CacheError
from repro.kvstore import HashDB


# -- CDT ---------------------------------------------------------------

def test_cdt_admit_and_lookup():
    cdt = CDT()
    entry = cdt.admit("/f", 0, 1024, benefit=0.01)
    assert cdt.lookup("/f", 0, 1024) is entry
    assert cdt.lookup("/f", 0, 2048) is None
    assert len(cdt) == 1


def test_cdt_admit_refreshes_benefit_as_ema():
    cdt = CDT()
    first = cdt.admit("/f", 0, 1024, benefit=0.01)
    second = cdt.admit("/f", 0, 1024, benefit=0.05)
    assert first is second
    # Exponential moving average, not overwrite: smooths the distance
    # term's per-sample noise.
    expected = (1 - CDT.BENEFIT_EMA) * 0.01 + CDT.BENEFIT_EMA * 0.05
    assert second.benefit == pytest.approx(expected)
    assert len(cdt) == 1
    # Converges towards a stable observation stream.
    for _ in range(40):
        cdt.admit("/f", 0, 1024, benefit=0.05)
    assert second.benefit == pytest.approx(0.05, rel=0.01)


def test_cdt_pending_fetches_sorted_by_benefit():
    cdt = CDT()
    low = cdt.admit("/f", 0, 10, benefit=0.001)
    high = cdt.admit("/f", 100, 10, benefit=0.1)
    cdt.admit("/f", 200, 10, benefit=0.05)  # C_flag not set
    low.c_flag = True
    high.c_flag = True
    assert cdt.pending_fetches() == [high, low]
    assert cdt.pending_fetches(limit=1) == [high]


def test_cdt_capacity_evicts_lowest_benefit():
    cdt = CDT(capacity_entries=2)
    cdt.admit("/f", 0, 10, benefit=0.5)
    cdt.admit("/f", 10, 10, benefit=0.1)
    cdt.admit("/f", 20, 10, benefit=0.3)
    assert len(cdt) == 2
    assert cdt.lookup("/f", 10, 10) is None  # lowest benefit evicted
    assert cdt.lookup("/f", 0, 10) is not None


def test_cdt_entries_for_file():
    cdt = CDT()
    cdt.admit("/a", 0, 10, 0.1)
    cdt.admit("/b", 0, 10, 0.1)
    cdt.admit("/a", 10, 10, 0.1)
    assert len(cdt.entries_for("/a")) == 2
    assert cdt.entries_for("/missing") == []


# -- DMT ----------------------------------------------------------------

def test_dmt_add_and_lookup():
    dmt = DMT()
    extent = dmt.add("/f", 1000, "/f.cache", 0, 500, dirty=True)
    segs = dmt.lookup("/f", 900, 700)
    assert segs == [(900, 1000, None), (1000, 1500, extent), (1500, 1600, None)]
    assert dmt.fully_mapped("/f", 1000, 500)
    assert not dmt.fully_mapped("/f", 999, 500)
    assert len(dmt) == 1
    assert dmt.mapped_bytes == 500


def test_dmt_lookup_unknown_file_is_all_miss():
    dmt = DMT()
    assert dmt.lookup("/nope", 0, 100) == [(0, 100, None)]


def test_dmt_overlap_rejected():
    dmt = DMT()
    dmt.add("/f", 0, "/c", 0, 100, dirty=False)
    with pytest.raises(CacheError):
        dmt.add("/f", 50, "/c", 200, 100, dirty=False)
    # Adjacent is fine.
    dmt.add("/f", 100, "/c", 100, 100, dirty=False)


def test_dmt_bad_length_rejected():
    dmt = DMT()
    with pytest.raises(CacheError):
        dmt.add("/f", 0, "/c", 0, 0, dirty=False)


def test_dmt_dirty_tracking():
    dmt = DMT()
    a = dmt.add("/f", 0, "/c", 0, 100, dirty=True)
    b = dmt.add("/f", 100, "/c", 100, 100, dirty=False)
    assert dmt.dirty_extents() == [a]
    dmt.set_dirty(a, False)
    assert dmt.dirty_extents() == []
    dmt.set_dirty(b, True)
    assert dmt.dirty_extents() == [b]


def test_dmt_remove():
    dmt = DMT()
    extent = dmt.add("/f", 0, "/c", 0, 100, dirty=False)
    dmt.remove(extent)
    assert dmt.lookup("/f", 0, 100) == [(0, 100, None)]
    with pytest.raises(CacheError):
        dmt.remove(extent)


def test_dmt_persistence_survives_crash():
    db = HashDB("dmt", sync_mode="always")
    dmt = DMT(db)
    a = dmt.add("/f", 0, "/c", 0, 100, dirty=True)
    dmt.add("/f", 200, "/c", 100, 50, dirty=False)
    dmt.set_dirty(a, False)

    dmt.recover()  # simulated power failure + recovery
    assert len(dmt) == 2
    segs = dmt.lookup("/f", 0, 250)
    recovered_a = segs[0][2]
    assert recovered_a is not None
    assert recovered_a.dirty is False  # the set_dirty survived
    assert recovered_a.c_offset == 0
    recovered_b = segs[-1][2]
    assert recovered_b.length == 50


def test_dmt_recovery_removed_extents_stay_removed():
    dmt = DMT()
    extent = dmt.add("/f", 0, "/c", 0, 100, dirty=False)
    dmt.remove(extent)
    dmt.recover()
    assert len(dmt) == 0


def test_dmt_recovery_continues_record_ids():
    dmt = DMT()
    dmt.add("/f", 0, "/c", 0, 100, dirty=False)
    dmt.recover()
    fresh = dmt.add("/f", 200, "/c", 200, 100, dirty=False)
    assert fresh.record_id == 2  # no id reuse after recovery


def test_dmt_all_extents_ordering():
    # Documented contract: files in first-mapping order, offsets within
    # a file ascending.  Both are pure functions of the simulated
    # operation sequence (never hash order), so iteration stays
    # deterministic without re-sorting the file keys on every call.
    dmt = DMT()
    dmt.add("/b", 0, "/cb", 0, 10, dirty=False)
    dmt.add("/a", 50, "/ca", 50, 10, dirty=False)
    dmt.add("/a", 0, "/ca", 0, 10, dirty=False)
    assert [(e.d_file, e.d_offset) for e in dmt.all_extents()] == [
        ("/b", 0), ("/a", 0), ("/a", 50)
    ]
