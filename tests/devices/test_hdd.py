"""Unit tests for the HDD timing model."""

import random

import pytest

from repro.devices import HDD, HDDSpec, SeekProfile
from repro.errors import ConfigError, DeviceError
from repro.units import GiB, KiB, MiB


def make_hdd(**overrides) -> HDD:
    defaults = dict(rotation_mode="expected")
    defaults.update(overrides)
    return HDD(HDDSpec(**defaults))


def test_sequential_requests_stream_without_positioning():
    hdd = make_hdd()
    first = hdd.service_time("read", 0, MiB)
    second = hdd.service_time("read", MiB, MiB)
    # Second request continues where the head is: pure transfer.
    assert second == pytest.approx(MiB * hdd.spec.beta)
    assert first >= second  # first may pay positioning at offset 0? (d=0)
    assert hdd.seek_count == 0  # offset 0 from landing zone is d == 0


def test_random_request_pays_seek_and_rotation():
    hdd = make_hdd()
    hdd.service_time("read", 0, MiB)
    far = hdd.service_time("read", 100 * GiB, MiB)
    near = MiB * hdd.spec.beta
    assert far > near + hdd.spec.avg_rotation
    assert hdd.seek_count == 1


def test_seek_time_grows_with_distance():
    hdd = make_hdd()
    profile = hdd.spec.profile()
    times = [profile.seek_time(d) for d in (MiB, GiB, 50 * GiB, 200 * GiB)]
    assert times == sorted(times)
    assert all(t > 0 for t in times)


def test_seek_time_zero_distance_is_free():
    profile = SeekProfile.default_250gb()
    assert profile.seek_time(0) == 0.0


def test_seek_profile_continuous_at_knee():
    profile = SeekProfile.default_250gb()
    bpc = profile.bytes_per_cylinder
    below = profile.seek_time((profile.knee - 1) * bpc)
    at = profile.seek_time(profile.knee * bpc)
    assert at == pytest.approx(below, rel=0.01)


def test_max_seek_is_plausible():
    profile = SeekProfile.default_250gb()
    # Full-stroke seek of a 7200rpm 3.5" disk: 10-25 ms.
    assert 8e-3 < profile.max_seek < 25e-3


def test_random_read_much_slower_than_sequential_for_small_requests():
    """The premise of the whole paper (Fig. 1) at single-device level."""
    rng = random.Random(7)
    size = 16 * KiB
    span = 16 * GiB

    seq = HDD(HDDSpec())
    seq_time = sum(
        seq.service_time("read", i * size, size, rng) for i in range(200)
    )
    rnd = HDD(HDDSpec())
    rnd_time = sum(
        rnd.service_time(
            "read", rng.randrange(0, span - size), size, rng
        )
        for i in range(200)
    )
    assert rnd_time > 5 * seq_time


def test_large_requests_close_the_random_gap():
    rng = random.Random(7)
    size = 32 * MiB
    span = 100 * GiB
    seq = HDD(HDDSpec())
    seq_time = sum(seq.service_time("read", i * size, size, rng) for i in range(20))
    rnd = HDD(HDDSpec())
    rnd_time = sum(
        rnd.service_time("read", rng.randrange(0, span - size), size, rng)
        for _ in range(20)
    )
    # Positioning is amortised: gap below 1.2x for 32MB requests.
    assert rnd_time < 1.2 * seq_time


def test_rotation_sampled_mode_uses_rng():
    hdd = HDD(HDDSpec(rotation_mode="sampled"))
    hdd.service_time("read", 0, KiB)
    t1 = hdd.positioning_time(10 * GiB, random.Random(1))
    t2 = hdd.positioning_time(10 * GiB, random.Random(2))
    assert t1 != t2


def test_capacity_overflow_rejected():
    hdd = make_hdd()
    with pytest.raises(DeviceError):
        hdd.service_time("read", hdd.capacity_bytes - 10, 100)


def test_unknown_op_rejected():
    hdd = make_hdd()
    with pytest.raises(DeviceError):
        hdd.service_time("erase", 0, 10)


def test_negative_offset_rejected():
    hdd = make_hdd()
    with pytest.raises(DeviceError):
        hdd.service_time("read", -1, 10)


def test_reset_clears_state():
    hdd = make_hdd()
    hdd.service_time("read", 0, MiB)
    hdd.service_time("read", 10 * GiB, MiB)
    hdd.reset()
    assert hdd.head_position is None
    assert hdd.total_requests == 0
    assert hdd.seek_count == 0


def test_bad_spec_rejected():
    with pytest.raises(ConfigError):
        HDDSpec(rotation_period=0)
    with pytest.raises(ConfigError):
        HDDSpec(transfer_rate=-1)
    with pytest.raises(ConfigError):
        HDDSpec(rotation_mode="psychic")


def test_stats_accumulate():
    hdd = make_hdd()
    hdd.service_time("read", 0, MiB)
    hdd.service_time("write", 2 * MiB, MiB)
    assert hdd.total_requests == 2
    assert hdd.total_bytes == 2 * MiB
    assert hdd.total_busy_time > 0
