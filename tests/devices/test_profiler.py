"""Unit tests for offline device profiling (cost-model parameters)."""

import random

import pytest

from repro.devices import HDD, SSD, DeviceProfiler, HDDSpec, SSDSpec
from repro.errors import DeviceError
from repro.units import GiB, KiB, MiB


@pytest.fixture(scope="module")
def hdd_profile():
    profiler = DeviceProfiler(rng=random.Random(42))
    return profiler.profile(HDD(HDDSpec()))


@pytest.fixture(scope="module")
def ssd_profile():
    return DeviceProfiler().profile(SSD(SSDSpec()))


def test_hdd_beta_matches_transfer_rate(hdd_profile):
    true_beta = HDDSpec().beta
    assert hdd_profile.beta_read == pytest.approx(true_beta, rel=0.02)
    assert hdd_profile.beta("write") == pytest.approx(true_beta, rel=0.02)


def test_hdd_rotation_estimate_close(hdd_profile):
    # R should land near the true average rotational delay (4.17 ms).
    true_r = HDDSpec().avg_rotation
    assert hdd_profile.avg_rotation == pytest.approx(true_r, rel=0.5)


def test_hdd_seek_curve_tracks_ground_truth(hdd_profile):
    truth = HDDSpec().profile()
    for d in (MiB, 100 * MiB, GiB, 10 * GiB, 100 * GiB):
        measured = hdd_profile.seek_time(d)
        actual = truth.seek_time(d)
        assert measured == pytest.approx(actual, rel=0.35, abs=1.5e-3)


def test_hdd_max_seek_plausible(hdd_profile):
    assert 5e-3 < hdd_profile.max_seek < 30e-3


def test_seek_curve_monotone(hdd_profile):
    distances = [64 * KiB * (4**i) for i in range(10)]
    times = [hdd_profile.seek_time(d) for d in distances]
    assert all(b >= a - 1e-9 for a, b in zip(times, times[1:]))


def test_ssd_profile_has_no_mechanics(ssd_profile):
    assert ssd_profile.seek_time(100 * GiB) == 0.0
    assert ssd_profile.avg_rotation == 0.0
    assert ssd_profile.max_seek == 0.0


def test_ssd_beta_matches_rates(ssd_profile):
    spec = SSDSpec()
    assert ssd_profile.beta_read == pytest.approx(spec.beta("read"), rel=0.01)
    assert ssd_profile.beta_write == pytest.approx(spec.beta("write"), rel=0.01)


def test_ssd_latency_recovered(ssd_profile):
    spec = SSDSpec()
    assert ssd_profile.latency_read == pytest.approx(spec.read_latency, rel=0.1)
    assert ssd_profile.latency_write == pytest.approx(spec.write_latency, rel=0.1)


def test_ssd_beta_smaller_than_hdd_effective_small_request_cost(
    hdd_profile, ssd_profile
):
    """Cost-model view of why small random requests belong on SSD."""
    size = 16 * KiB
    hdd_cost = hdd_profile.seek_time(GiB) + hdd_profile.avg_rotation
    hdd_cost += size * hdd_profile.beta_read
    ssd_cost = ssd_profile.latency_read + size * ssd_profile.beta_read
    assert hdd_cost > 10 * ssd_cost


def test_profiler_rejects_unknown_device():
    class Weird:
        kind = "weird"

    with pytest.raises(DeviceError):
        DeviceProfiler().profile(Weird())  # type: ignore[arg-type]


def test_profiling_leaves_device_reset():
    device = HDD(HDDSpec())
    DeviceProfiler(rng=random.Random(1)).profile(device)
    assert device.total_requests == 0
    assert device.head_position is None
