"""Unit tests for the SSD timing model."""

import random

import pytest

from repro.devices import SSD, SSDSpec
from repro.errors import ConfigError, DeviceError
from repro.units import GiB, KiB, MiB


def test_ssd_random_equals_sequential():
    """The key SSD property the paper exploits: locality-insensitive."""
    ssd = SSD()
    rng = random.Random(3)
    size = 16 * KiB
    seq = sum(ssd.service_time("read", i * size, size) for i in range(100))
    rnd = sum(
        ssd.service_time("read", rng.randrange(0, 50 * GiB), size)
        for _ in range(100)
    )
    assert rnd == pytest.approx(seq)


def test_reads_faster_than_writes():
    ssd = SSD()
    read = ssd.service_time("read", 0, MiB)
    write = ssd.service_time("write", 0, MiB)
    assert read < write


def test_small_requests_dominated_by_latency():
    ssd = SSD()
    t = ssd.service_time("read", 0, 4 * KiB)
    assert t >= ssd.spec.read_latency
    # 4KB at full rate would be ~7us; latency dominates.
    assert t < 10 * ssd.spec.read_latency


def test_small_requests_do_not_reach_full_channel_parallelism():
    spec = SSDSpec(channels=4, page_size=4096)
    ssd = SSD(spec)
    one_page = ssd.service_time("read", 0, 4096) - spec.read_latency
    four_pages = ssd.service_time("read", 0, 4 * 4096) - spec.read_latency
    # 4 pages across 4 channels take the same transfer time as 1 page
    # on 1 channel.
    assert four_pages == pytest.approx(one_page)


def test_large_transfer_rate_matches_spec():
    ssd = SSD()
    size = 64 * MiB
    t = ssd.service_time("read", 0, size)
    rate = size / (t - ssd.spec.read_latency)
    assert rate == pytest.approx(ssd.spec.read_rate, rel=1e-6)


def test_zero_size_costs_latency_only():
    ssd = SSD()
    assert ssd.service_time("write", 0, 0) == ssd.spec.write_latency


def test_capacity_enforced():
    ssd = SSD()
    with pytest.raises(DeviceError):
        ssd.service_time("read", ssd.capacity_bytes, 1)


def test_bad_spec_rejected():
    with pytest.raises(ConfigError):
        SSDSpec(read_rate=0)
    with pytest.raises(ConfigError):
        SSDSpec(read_latency=-1)
    with pytest.raises(ConfigError):
        SSDSpec(channels=0)


def test_ssd_vs_hdd_small_random_advantage():
    """SSD should beat HDD by a large factor on small random requests."""
    from repro.devices import HDD, HDDSpec

    rng = random.Random(11)
    size = 16 * KiB
    hdd = HDD(HDDSpec(rotation_mode="expected"))
    ssd = SSD()
    hdd_time = sum(
        hdd.service_time("read", rng.randrange(0, 100 * GiB), size)
        for _ in range(100)
    )
    ssd_time = sum(
        ssd.service_time("read", rng.randrange(0, 50 * GiB), size)
        for _ in range(100)
    )
    assert hdd_time > 20 * ssd_time
