"""Regenerate the golden determinism fixture (maintainer tool).

Run on a known-good tree to capture the bit-exact fingerprints the
engine-optimisation determinism gate compares against::

    PYTHONPATH=src python tests/experiments/capture_golden.py

``--legacy`` captures the same points with coalescing forced *off*
(the pre-coalescing event schedule) into the legacy fixture instead.

The fixture must only ever be regenerated when an *intentional*
behaviour change lands; performance work is required to keep these
hashes stable (same seeds -> same bits).
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.experiments import common, harness
import repro.experiments  # noqa: F401  - registers all drivers

#: (exp_id, scale) pairs covered by the gate.  Scales are chosen so the
#: whole fixture reruns in well under a minute while still exercising
#: admission, eviction, flushing and lazy fetches.
GOLDEN_POINTS = [
    ("fig6a", 0.05),
    ("fig6b", 0.05),
    ("fig9a", 0.1),
    ("fig9b", 0.1),
    ("table3", 0.05),
]

FIXTURE = pathlib.Path(__file__).parent / "golden_results.json"

#: Pinned digests for the legacy (uncoalesced) event schedule, kept
#: alive by test_legacy_uncoalesced.py after coalescing became the
#: default.
LEGACY_FIXTURE = (
    pathlib.Path(__file__).parent / "golden_results_uncoalesced.json"
)


def capture() -> dict:
    fixture: dict = {"points": {}}
    for exp_id, scale in GOLDEN_POINTS:
        t0 = time.perf_counter()  # simlint: disable=DET001 - progress report
        result = harness.get_experiment(exp_id).run(scale)
        wall = time.perf_counter() - t0  # simlint: disable=DET001 - progress report
        fixture["points"][f"{exp_id}@{scale}"] = {
            "exp_id": exp_id,
            "scale": scale,
            "digest": harness.fingerprint_digest(result),
            "fingerprint": harness.fingerprint(result),
        }
        print(f"{exp_id}@{scale}: {wall:.1f}s "
              f"{fixture['points'][f'{exp_id}@{scale}']['digest'][:16]}")
    return fixture


if __name__ == "__main__":
    target = FIXTURE
    if "--legacy" in sys.argv[1:]:
        common.COALESCE_OVERRIDE = False
        target = LEGACY_FIXTURE
    target.write_text(json.dumps(capture(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {target}")
