"""Tests for the text chart renderer."""

from repro.experiments import ExperimentResult, Series
from repro.experiments.chart import render_bars


def make(ys_a, ys_b=None):
    series = [Series("a", list(range(len(ys_a))), ys_a)]
    if ys_b is not None:
        series.append(Series("b", list(range(len(ys_b))), ys_b))
    return ExperimentResult("t", "title", "x", "MB/s", series)


def test_bars_scale_to_peak():
    chart = render_bars(make([10.0, 20.0]), width=10)
    lines = [l for l in chart.splitlines() if "|" in l]
    assert lines[0].count("█") == 5
    assert lines[1].count("█") == 10


def test_two_series_use_distinct_glyphs():
    chart = render_bars(make([10.0], [5.0]))
    assert "█" in chart and "▓" in chart
    assert "a" in chart and "b" in chart


def test_zero_data_handled():
    assert "no positive data" in render_bars(make([0.0, 0.0]))


def test_values_annotated():
    chart = render_bars(make([12.3]))
    assert "12.3" in chart
