"""The determinism gate: experiment results are bit-identical.

Every entry in ``golden_results.json`` pins the exact fingerprint a
(experiment, scale) point produced on a known-good tree.  Engine or
metadata-plane optimisations must keep these stable — same seeds, same
bits.  A legitimate behaviour change must regenerate the fixture via
``python tests/experiments/capture_golden.py`` and say why in the
commit.
"""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from capture_golden import FIXTURE, GOLDEN_POINTS  # noqa: E402

from repro.experiments import harness  # noqa: E402
import repro.experiments  # noqa: F401,E402  - registers all drivers


@pytest.fixture(scope="module")
def fixture_points() -> dict:
    data = json.loads(FIXTURE.read_text())
    return data["points"]


def test_fixture_covers_declared_points(fixture_points):
    assert set(fixture_points) == {
        f"{exp_id}@{scale}" for exp_id, scale in GOLDEN_POINTS
    }


@pytest.mark.parametrize(
    "exp_id, scale", GOLDEN_POINTS,
    ids=[f"{e}@{s}" for e, s in GOLDEN_POINTS],
)
def test_experiment_is_bit_identical(exp_id, scale, fixture_points):
    golden = fixture_points[f"{exp_id}@{scale}"]
    result = harness.get_experiment(exp_id).run(scale)
    digest = harness.fingerprint_digest(result)
    if digest != golden["digest"]:
        fresh = harness.fingerprint(result)
        diff = [
            f"  {key}: golden={value!r} fresh={fresh.get(key)!r}"
            for key, value in golden["fingerprint"].items()
            if fresh.get(key) != value
        ]
        pytest.fail(
            f"{exp_id}@{scale} diverged from the golden fixture "
            f"(digest {digest[:16]} != {golden['digest'][:16]}).\n"
            "Changed fingerprint fields:\n" + "\n".join(diff[:20])
        )


def test_rerun_in_same_process_is_stable():
    """Two back-to-back runs in one interpreter agree (no hidden
    global state leaking between campaign runs).  The memoisation
    cache is cleared so the second run genuinely recomputes."""
    from repro.experiments import fig9_hpio

    exp_id, scale = "fig9a", 0.1
    fig9_hpio._MEASUREMENTS.clear()
    first = harness.fingerprint_digest(
        harness.get_experiment(exp_id).run(scale)
    )
    fig9_hpio._MEASUREMENTS.clear()
    second = harness.fingerprint_digest(
        harness.get_experiment(exp_id).run(scale)
    )
    assert first == second
