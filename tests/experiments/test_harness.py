"""Tests for the experiment harness (registry, results, rendering)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    REGISTRY,
    ExperimentResult,
    Series,
    get_experiment,
    list_experiments,
)
from repro.experiments.report import render_markdown


def test_all_paper_artefacts_registered():
    expected = {
        "fig1", "fig6a", "fig6b", "fig7a", "fig7b", "fig8a", "fig8b",
        "fig9a", "fig9b", "fig10a", "fig10b", "fig11",
        "table3", "table4", "metadata",
        "ablation_policy", "ablation_rebuilder", "ablation_costmodel",
    }
    assert expected <= set(list_experiments())


def test_get_experiment_unknown():
    with pytest.raises(ExperimentError):
        get_experiment("fig99")


def test_every_experiment_has_id_and_title():
    for exp_id, experiment in REGISTRY.items():
        assert experiment.exp_id == exp_id
        assert experiment.title
        assert experiment.default_scale > 0


def test_series_length_mismatch_rejected():
    with pytest.raises(ExperimentError):
        Series("x", [1, 2], [1.0])


def make_result(stock=(10.0, 20.0), s4d=(15.0, 20.0)):
    return ExperimentResult(
        exp_id="demo",
        title="demo experiment",
        x_label="x",
        y_label="MB/s",
        series=[
            Series("stock", [1, 2], list(stock)),
            Series("s4d", [1, 2], list(s4d)),
        ],
        paper_claims=["something"],
    )


def test_improvements():
    result = make_result()
    assert result.improvements("stock", "s4d") == [pytest.approx(50.0), 0.0]


def test_get_series_by_label():
    result = make_result()
    assert result.get("s4d").y == [15.0, 20.0]
    with pytest.raises(ExperimentError):
        result.get("nope")


def test_to_text_renders_table():
    text = make_result().to_text()
    assert "demo experiment" in text
    assert "stock" in text and "s4d" in text
    assert "15.00" in text


def test_ok_tracks_failures():
    result = make_result()
    assert result.ok
    result.failures.append("boom")
    assert not result.ok
    assert "SHAPE MISMATCH: boom" in result.to_text()


def test_render_markdown_summarises():
    results = {"demo": make_result()}
    doc = render_markdown(results, scale_note="test")
    assert "# EXPERIMENTS" in doc
    assert "1/1 experiments pass" in doc
    assert "demo experiment" in doc
    assert "Shape checks: **pass**" in doc


def test_render_markdown_reports_failures():
    result = make_result()
    result.failures.append("it broke")
    doc = render_markdown({"demo": result})
    assert "Shape checks: **FAIL**" in doc
    assert "it broke" in doc
