"""The legacy (uncoalesced) determinism pin.

Coalescing is the default now, and ``golden_results.json`` is blessed
under it.  The pre-coalescing event schedule remains reachable via
``coalesce=False`` / ``--no-coalesce`` and its digests are pinned in
``golden_results_uncoalesced.json`` — this file keeps that pin honest.
Regenerate with::

    PYTHONPATH=src python tests/experiments/capture_golden.py --legacy
"""

import json
import pathlib
import subprocess
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from capture_golden import (  # noqa: E402
    FIXTURE,
    GOLDEN_POINTS,
    LEGACY_FIXTURE,
)

#: The cheapest golden point whose digest actually differs between the
#: coalesced and legacy schedules (fig9/table3 requests never span more
#: fragments than servers, so coalescing is a no-op for them).
LEGACY_CHECK_POINT = ("fig6b", 0.05)


def test_legacy_fixture_covers_declared_points():
    points = json.loads(LEGACY_FIXTURE.read_text())["points"]
    assert set(points) == {
        f"{exp_id}@{scale}" for exp_id, scale in GOLDEN_POINTS
    }


def test_legacy_check_point_distinguishes_the_schedules():
    """The replayed point must be one where coalescing matters —
    otherwise test_legacy_point_reproduces_uncoalesced_digest would
    pass even with the coalesce plumbing broken."""
    exp_id, scale = LEGACY_CHECK_POINT
    key = f"{exp_id}@{scale}"
    legacy = json.loads(LEGACY_FIXTURE.read_text())["points"][key]
    blessed = json.loads(FIXTURE.read_text())["points"][key]
    assert legacy["digest"] != blessed["digest"]


def test_legacy_point_reproduces_uncoalesced_digest():
    """Replaying a point with coalescing forced off still produces the
    pre-coalescing bits.  Runs in a subprocess so the override and the
    in-process experiment memoisation cannot leak into other tests."""
    exp_id, scale = LEGACY_CHECK_POINT
    script = (
        "from repro.experiments import common, harness\n"
        "import repro.experiments\n"
        "common.COALESCE_OVERRIDE = False\n"
        f"result = harness.get_experiment({exp_id!r}).run({scale!r})\n"
        "print(harness.fingerprint_digest(result))\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, timeout=300, check=True,
    )
    digest = proc.stdout.strip().splitlines()[-1]
    key = f"{exp_id}@{scale}"
    legacy = json.loads(LEGACY_FIXTURE.read_text())["points"][key]
    assert digest == legacy["digest"]
