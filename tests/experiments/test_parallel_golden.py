"""The parallel determinism gate: ``--jobs N`` is bit-identical.

The golden subset (fig6/fig9/table3 at the fixture scales) is run once
serially and once across a 4-wide work-stealing pool (``run_all`` with
``jobs > 1`` drains the shared unit queue); every fingerprint digest
must match bit for bit.  A third pass replays the whole subset out of
the content-addressed result store — cache hits must be the same bits
too.  This is the acceptance test for the sweep plane: parallelism and
memoisation may change wall time, never output.
"""

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from capture_golden import GOLDEN_POINTS  # noqa: E402

from repro.errors import WorkerCrashError  # noqa: E402
from repro.experiments import harness, report  # noqa: E402
import repro.experiments  # noqa: F401,E402  - registers all drivers
from repro.parallel import ResultStore, fanout  # noqa: E402
from repro.parallel.experiments import run_group, share_groups  # noqa: E402


def _digests(jobs: int, store=None) -> dict[str, str]:
    """Golden-subset digests at the given pool width."""
    by_scale: dict[float, list[str]] = {}
    for exp_id, scale in GOLDEN_POINTS:
        by_scale.setdefault(scale, []).append(exp_id)
    digests: dict[str, str] = {}
    for scale in sorted(by_scale):
        results = report.run_all(
            scale=scale, only=by_scale[scale], jobs=jobs, store=store
        )
        for exp_id, result in results.items():
            digests[f"{exp_id}@{scale}"] = harness.fingerprint_digest(result)
    return digests


def test_jobs4_digests_bit_identical_to_serial():
    serial = _digests(jobs=1)
    parallel = _digests(jobs=4)
    assert set(serial) == {f"{e}@{s}" for e, s in GOLDEN_POINTS}
    assert parallel == serial


def test_warm_cache_digests_bit_identical_to_serial(tmp_path):
    """Every golden point served from the sweep cache carries the same
    fingerprint as a fresh serial computation."""
    serial = _digests(jobs=1)
    with ResultStore(tmp_path / "cache") as store:
        cold = _digests(jobs=1, store=store)
        assert store.hits == 0 and store.stores == len(GOLDEN_POINTS)
        warm = _digests(jobs=1, store=store)
        assert store.hits == len(GOLDEN_POINTS)
    assert cold == serial
    assert warm == serial


def test_share_groups_keep_memoised_siblings_together():
    groups = dict(share_groups(["fig6a", "fig6b", "table3", "fig9a"]))
    assert groups["fig6_ior_reqsize"] == ["fig6a", "fig6b"]
    assert groups["fig9_hpio"] == ["fig9a"]
    assert groups["table3_distribution"] == ["table3"]


def test_worker_crash_names_the_config():
    """A config that dies in a spawned worker surfaces a clean error
    naming the failing group; the pool shuts down without hanging."""
    tasks = [
        ("good", (["table3"], 0.02)),
        ("bad-config", (["no_such_experiment"], 0.02)),
    ]
    with pytest.raises(WorkerCrashError) as excinfo:
        fanout(tasks, run_group, jobs=2)
    assert excinfo.value.task_id == "bad-config"
    assert "no_such_experiment" in excinfo.value.worker_traceback


def test_parallel_run_all_keeps_wall_time_notes_and_order():
    results = report.run_all(
        scale=0.02, only=["table3", "fig9a"], jobs=2
    )
    # Same iteration order as the serial runner (sorted ids) and the
    # standard wall-time note on every result.
    assert list(results) == ["fig9a", "table3"]
    for result in results.values():
        assert any(note.startswith("wall time") for note in result.notes)
