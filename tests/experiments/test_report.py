"""Tests for run_all / report plumbing with a stub experiment."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import REGISTRY, Experiment, ExperimentResult, Series
from repro.experiments.harness import register
from repro.experiments.report import run_all


@pytest.fixture
def stub_experiment():
    class Stub(Experiment):
        exp_id = "stub_exp"
        title = "stub"
        default_scale = 1.0
        ran_with = None

        def run(self, scale=None):
            type(self).ran_with = scale
            return ExperimentResult(
                exp_id=self.exp_id, title=self.title,
                x_label="x", y_label="y",
                series=[Series("s", [1], [2.0])],
            )

        def check_shape(self, result):
            return ["stub always fails"] if result.get("s").y[0] < 0 else []

    register(Stub)
    yield Stub
    del REGISTRY["stub_exp"]


def test_run_all_only_filters(stub_experiment):
    results = run_all(only=["stub_exp"])
    assert list(results) == ["stub_exp"]
    assert results["stub_exp"].ok
    # Wall-time note was appended.
    assert any("wall time" in note for note in results["stub_exp"].notes)


def test_run_all_passes_scale(stub_experiment):
    run_all(scale=0.125, only=["stub_exp"])
    assert stub_experiment.ran_with == 0.125


def test_run_all_progress_callback(stub_experiment):
    seen = []
    run_all(only=["stub_exp"], progress=seen.append)
    assert seen == ["running stub_exp ..."]


def test_duplicate_registration_rejected(stub_experiment):
    with pytest.raises(ExperimentError):
        register(stub_experiment)


def test_register_requires_exp_id():
    class Nameless(Experiment):
        exp_id = ""
        title = "nameless"

        def run(self, scale=None):  # pragma: no cover
            raise NotImplementedError

    with pytest.raises(ExperimentError):
        register(Nameless)
