"""Tests for IOSIG-style tracing and analysis."""

from repro.iosig import (
    TraceRecord,
    Tracer,
    detect_signature,
    randomness_ratio,
    request_distribution,
)
from repro.iosig.analysis import average_request_size, byte_distribution


def rec(time, offset, size=100, rank=0, d=None, c=0, op="read"):
    d = size if d is None else d
    return TraceRecord(
        time=time, rank=rank, op=op, path="/f", offset=offset,
        size=size, dserver_bytes=d, cserver_bytes=c,
    )


def test_tracer_records_and_windows():
    tracer = Tracer()
    for t in (0.5, 1.5, 2.5, 3.5):
        tracer.record(rec(t, int(t * 1000)))
    assert len(tracer) == 4
    assert [r.time for r in tracer.window(1.0, 3.0)] == [1.5, 2.5]
    tracer.clear()
    assert len(tracer) == 0


def test_tracer_for_rank():
    tracer = Tracer()
    tracer.record(rec(0, 0, rank=0))
    tracer.record(rec(1, 0, rank=1))
    assert len(tracer.for_rank(1)) == 1


def test_target_majority():
    assert rec(0, 0, size=100, d=100, c=0).target == "dservers"
    assert rec(0, 0, size=100, d=20, c=80).target == "cservers"


def test_request_distribution():
    records = [rec(0, 0, d=100, c=0), rec(1, 0, d=0, c=100),
               rec(2, 0, d=0, c=100), rec(3, 0, d=0, c=100)]
    d_pct, c_pct = request_distribution(records)
    assert (d_pct, c_pct) == (25.0, 75.0)
    assert request_distribution([]) == (0.0, 0.0)


def test_byte_distribution():
    records = [rec(0, 0, size=300, d=300, c=0), rec(1, 0, size=100, d=0, c=100)]
    d_pct, c_pct = byte_distribution(records)
    assert (d_pct, c_pct) == (75.0, 25.0)


def test_randomness_ratio_sequential_stream():
    records = [rec(t, t * 100, size=100) for t in range(10)]
    assert randomness_ratio(records) == 0.0


def test_randomness_ratio_random_stream():
    offsets = [0, 5000, 200, 9000, 40]
    records = [rec(i, off) for i, off in enumerate(offsets)]
    assert randomness_ratio(records) == 1.0


def test_randomness_ratio_per_rank_streams():
    # Two interleaved sequential streams are still sequential per rank.
    records = []
    for i in range(5):
        records.append(rec(2 * i, i * 100, rank=0))
        records.append(rec(2 * i + 1, 50_000 + i * 100, rank=1))
    assert randomness_ratio(records) == 0.0


def test_detect_signature_cases():
    assert detect_signature([(0, 10), (10, 10), (20, 10)]) == "sequential"
    assert detect_signature([(0, 10), (15, 10), (30, 10)]) == "strided(5)"
    assert detect_signature([(0, 10), (500, 10), (90, 10)]) == "random"
    assert detect_signature([(0, 10)]) == "sequential"


def test_average_request_size():
    records = [rec(0, 0, size=100), rec(1, 0, size=300)]
    assert average_request_size(records) == 200.0
    assert average_request_size([]) == 0.0
