"""Tests for IOSIG signature extraction and trace reports."""

import pytest

from repro.iosig import (
    TraceRecord,
    analyse_trace,
    extract_rank_signature,
)
from repro.units import KiB


def rec(time, offset, size=16 * KiB, rank=0, op="read", c=0):
    return TraceRecord(
        time=time, rank=rank, op=op, path="/f", offset=offset, size=size,
        dserver_bytes=size - c, cserver_bytes=c,
    )


def test_sequential_fixed_size_signature():
    records = [rec(t, t * 16 * KiB) for t in range(10)]
    sig = extract_rank_signature(0, records)
    assert sig.spatial == "sequential"
    assert sig.size_pattern == f"fixed({16 * KiB})"
    assert sig.read_fraction == 1.0
    assert sig.reuse_fraction == 0.0
    assert sig.bytes_moved == 10 * 16 * KiB


def test_mixed_sizes_and_ops():
    records = [
        rec(0, 0, size=4 * KiB, op="write"),
        rec(1, 4 * KiB, size=8 * KiB, op="read"),
        rec(2, 12 * KiB, size=4 * KiB, op="read"),
    ]
    sig = extract_rank_signature(0, records)
    assert sig.size_pattern == "mixed"
    assert sig.dominant_size == 4 * KiB
    assert sig.read_fraction == pytest.approx(2 / 3)


def test_reuse_detected():
    records = [rec(0, 0), rec(1, 16 * KiB), rec(2, 0), rec(3, 16 * KiB)]
    sig = extract_rank_signature(0, records)
    assert sig.reuse_fraction == 0.5


def test_out_of_order_records_are_time_sorted():
    records = [rec(2, 32 * KiB), rec(0, 0), rec(1, 16 * KiB)]
    sig = extract_rank_signature(0, records)
    assert sig.spatial == "sequential"


def test_analyse_trace_builds_report():
    records = []
    # Rank 0 sequential, rank 1 random, some to CServers.
    for t in range(8):
        records.append(rec(2 * t, t * 16 * KiB, rank=0))
    for t, off in enumerate([50, 800, 90, 4000, 7, 900, 13, 555]):
        records.append(rec(2 * t + 1, off * KiB, rank=1, c=16 * KiB))
    report = analyse_trace(records)
    assert len(report.ranks) == 2
    assert report.spatial_mix() == {"sequential": 1, "random": 1}
    assert report.cserver_pct == 50.0
    assert 0.4 < report.randomness < 0.6
    text = report.to_text()
    assert "rank 0" in text and "rank 1" in text
    assert "spatial mix" in text


def test_report_from_real_run():
    from repro.cluster import ClusterSpec, run_workload
    from repro.workloads import SyntheticMixWorkload

    spec = ClusterSpec(num_dservers=2, num_cservers=2, num_nodes=4, seed=37)
    workload = SyntheticMixWorkload(
        4, "16MB", random_fraction=0.5,
        sequential_request="512KB", random_request="16KB", seed=2,
    )
    result = run_workload(spec, workload, s4d=True, phases=("write",))
    report = analyse_trace(result.tracer.records)
    mix = report.spatial_mix()
    assert mix.get("random", 0) == 2
    assert mix.get("sequential", 0) == 2
