"""Tests for the HashDB store: CRUD, WAL durability, crash recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KVStoreClosed, KVStoreError
from repro.kvstore import HashDB


def test_put_get_roundtrip():
    db = HashDB("dmt")
    db.put("k", {"offset": 10})
    assert db.get("k") == {"offset": 10}
    assert "k" in db
    assert db.get("missing") is None
    assert db.get("missing", 7) == 7


def test_delete():
    db = HashDB("dmt")
    db.put("k", 1)
    db.delete("k")
    assert "k" not in db
    with pytest.raises(KVStoreError):
        db.delete("k")


def test_keys_items_len():
    db = HashDB("dmt")
    db.put("b", 2)
    db.put("a", 1)
    assert db.keys() == ["a", "b"]
    assert db.items() == [("a", 1), ("b", 2)]
    assert len(db) == 2


def test_always_sync_survives_crash():
    db = HashDB("dmt", sync_mode="always")
    db.put("k", "v")
    db.crash()
    assert db.get("k") == "v"


def test_manual_sync_loses_unsynced_on_crash():
    db = HashDB("dmt", sync_mode="manual")
    db.put("synced", 1)
    db.sync()
    db.put("lost", 2)
    assert db.unsynced_records == 1
    db.crash()
    assert db.get("synced") == 1
    assert "lost" not in db


def test_crash_replays_deletes():
    db = HashDB("dmt", sync_mode="always")
    db.put("k", 1)
    db.delete("k")
    db.crash()
    assert "k" not in db


def test_sync_returns_flushed_count():
    db = HashDB("dmt", sync_mode="manual")
    db.put("a", 1)
    db.put("b", 2)
    assert db.sync() == 2
    assert db.sync() == 0


def test_compact_shrinks_log():
    db = HashDB("dmt", sync_mode="always")
    for i in range(10):
        db.put("k", i)
    assert db.durable_log_length == 10
    db.compact()
    assert db.durable_log_length == 1
    db.crash()
    assert db.get("k") == 9


def test_close_syncs_and_blocks_access():
    db = HashDB("dmt", sync_mode="manual")
    db.put("k", 1)
    db.close()
    assert db.closed
    with pytest.raises(KVStoreClosed):
        db.get("k")
    with pytest.raises(KVStoreClosed):
        db.put("k", 2)
    # Close is idempotent.
    db.close()


def test_bad_sync_mode_rejected():
    with pytest.raises(KVStoreError):
        HashDB("dmt", sync_mode="sometimes")


def test_stats_counted():
    db = HashDB("dmt")
    db.put("a", 1)
    db.get("a")
    db.get("b")
    assert db.puts == 1
    assert db.gets == 2
    assert db.syncs == 1


_kv_ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "delete", "sync", "crash"]),
        st.sampled_from(["k1", "k2", "k3"]),
        st.integers(min_value=0, max_value=100),
    ),
    max_size=50,
)


@given(_kv_ops)
@settings(max_examples=200, deadline=None)
def test_durability_model(ops):
    """Applied state == model; post-crash state == synced model."""
    db = HashDB("dmt", sync_mode="manual")
    applied: dict[str, int] = {}
    durable: dict[str, int] = {}
    for op, key, value in ops:
        if op == "put":
            db.put(key, value)
            applied[key] = value
        elif op == "delete":
            if key in applied:
                db.delete(key)
                del applied[key]
        elif op == "sync":
            db.sync()
            durable = dict(applied)
        else:  # crash
            db.crash()
            applied = dict(durable)
        assert dict(db.items()) == applied
