"""File-backed HashDB: persistence, reopen, torn-tail crash recovery."""

import os

import pytest

from repro.errors import KVStoreError
from repro.kvstore import HashDB, WalRecord, replay_wal_bytes


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "store.db")


def test_file_roundtrip_and_reopen(db_path):
    db = HashDB("file", path=db_path)
    db.put("a", {"x": 1})
    db.put("b", [1, 2, 3])
    db.delete("a")
    db.close()

    db2 = HashDB("file", path=db_path)
    assert "a" not in db2
    assert db2.get("b") == [1, 2, 3]
    assert db2.durable_log_length == 3
    assert not db2.recovered_truncated_tail
    db2.close()


def test_crash_reopens_from_disk(db_path):
    db = HashDB("file", path=db_path, sync_mode="manual")
    db.put("kept", 1)
    db.sync()
    db.put("lost", 2)
    db.crash()
    assert db.get("kept") == 1
    assert "lost" not in db
    db.close()


def test_compact_shrinks_file_and_keeps_state(db_path):
    db = HashDB("file", path=db_path)
    for k in range(20):
        db.put("key", k)  # 20 records, one live key
    before = os.path.getsize(db_path)
    db.compact()
    after = os.path.getsize(db_path)
    assert after < before
    assert db.durable_log_length == 1
    db.close()
    db2 = HashDB("file", path=db_path)
    assert db2.get("key") == 19
    db2.close()


def test_compact_then_append_continues_cleanly(db_path):
    db = HashDB("file", path=db_path)
    db.put("a", 1)
    db.compact()
    db.put("b", 2)
    db.close()
    db2 = HashDB("file", path=db_path)
    assert db2.items() == [("a", 1), ("b", 2)]
    db2.close()


def test_truncated_tail_recovery_at_every_byte_boundary(db_path):
    """A crash mid-append of the LAST record must be survivable no
    matter how many of its bytes made it to disk: replay keeps every
    complete record and the reopened store trims back to them."""
    db = HashDB("file", path=db_path)
    db.put("a", {"x": 1})
    db.put("b", "two")
    full = os.path.getsize(db_path)
    db.put("c", list(range(8)))
    db.close()
    total = os.path.getsize(db_path)
    with open(db_path, "rb") as fh:
        blob = fh.read()

    for cut in range(full, total):
        torn = str(db_path) + f".cut{cut}"
        with open(torn, "wb") as fh:
            fh.write(blob[:cut])
        recovered = HashDB("file", path=torn)
        assert recovered.recovered_truncated_tail == (cut != full)
        assert recovered.get("a") == {"x": 1}
        assert recovered.get("b") == "two"
        assert "c" not in recovered
        # The torn bytes were trimmed: appending works and reopening
        # again sees the new record, not garbage.
        recovered.put("c2", cut)
        recovered.close()
        assert os.path.getsize(torn) > cut - (total - full)
        reread = HashDB("file", path=torn)
        assert reread.get("c2") == cut
        assert not reread.recovered_truncated_tail
        reread.close()
        os.unlink(torn)


def test_torn_tail_recovery_after_full_record_too(db_path):
    """Truncating exactly at the end of the last record is a clean
    file, not a recovery."""
    db = HashDB("file", path=db_path)
    db.put("a", 1)
    db.close()
    db2 = HashDB("file", path=db_path)
    assert not db2.recovered_truncated_tail
    assert db2.get("a") == 1
    db2.close()


def test_replay_wal_bytes_rejects_decodable_corruption():
    import pickle
    import struct

    blob = pickle.dumps(("not-an-op", "k", 1), protocol=4)
    data = struct.pack("<I", len(blob)) + blob
    with pytest.raises(KVStoreError):
        replay_wal_bytes(data)


def test_replay_wal_bytes_tolerates_undecodable_tail():
    import pickle
    import struct

    good = pickle.dumps(("put", "k", 1), protocol=4)
    data = struct.pack("<I", len(good)) + good
    # A "complete-by-length" tail whose body is garbage: mid-append
    # artefact, replay stops before it.
    data_torn = data + struct.pack("<I", 4) + b"\xff\xff\xff\xff"
    records, good_len = replay_wal_bytes(data_torn)
    assert records == [WalRecord("put", "k", 1)]
    assert good_len == len(data)


def test_in_memory_backend_unchanged_by_path_feature():
    db = HashDB("mem")
    db.put("k", 1)
    db.crash()
    assert db.get("k") == 1
    assert db.path is None
