"""Tests for the lock manager."""

import pytest

from repro.errors import KVStoreError, LockTimeout
from repro.kvstore import LockManager
from repro.kvstore.locking import TimeoutLock
from repro.sim import Simulator


def test_uncontended_acquire_is_immediate():
    sim = Simulator()
    locks = LockManager(sim)

    def body():
        token = yield locks.acquire("dmt", owner="p0")
        assert locks.is_held("dmt")
        locks.release(token)
        assert not locks.is_held("dmt")
        return sim.now

    assert sim.run_process(body()) == 0.0


def test_contended_lock_fifo():
    sim = Simulator()
    locks = LockManager(sim)
    order = []

    def worker(ident, hold):
        token = yield locks.acquire("dmt", owner=str(ident))
        order.append((ident, sim.now))
        yield sim.timeout(hold)
        locks.release(token)

    def parent():
        yield sim.all_of([sim.spawn(worker(i, 1.0)) for i in range(3)])

    sim.run_process(parent())
    assert order == [(0, 0.0), (1, 1.0), (2, 2.0)]
    assert locks.contentions == 2


def test_independent_keys_do_not_contend():
    sim = Simulator()
    locks = LockManager(sim)
    times = []

    def worker(key):
        token = yield locks.acquire(key)
        yield sim.timeout(1.0)
        locks.release(token)
        times.append(sim.now)

    def parent():
        yield sim.all_of([sim.spawn(worker("a")), sim.spawn(worker("b"))])

    sim.run_process(parent())
    assert times == [1.0, 1.0]


def test_release_requires_ownership():
    sim = Simulator()
    locks = LockManager(sim)

    def body():
        token = yield locks.acquire("k")
        stranger = yield locks.acquire("other")
        with pytest.raises(KVStoreError):
            locks.release(type(token)("k", "forged"))
        locks.release(token)
        locks.release(stranger)

    sim.run_process(body())


def test_with_lock_releases_on_exception():
    sim = Simulator()
    locks = LockManager(sim)

    def critical():
        yield sim.timeout(0.1)
        raise RuntimeError("inside critical section")

    def body():
        try:
            yield from locks.with_lock("k", critical)
        except RuntimeError:
            pass
        assert not locks.is_held("k")
        return True

    assert sim.run_process(body())


def test_timeout_lock_acquires_when_free():
    sim = Simulator()
    locks = LockManager(sim)
    tlock = TimeoutLock(locks, budget=1.0)

    def body():
        token = yield from tlock.acquire("k")
        locks.release(token)
        return True

    assert sim.run_process(body())


def test_timeout_lock_raises_and_cancels():
    sim = Simulator()
    locks = LockManager(sim)
    tlock = TimeoutLock(locks, budget=0.5)
    outcome = {}

    def holder():
        token = yield locks.acquire("k")
        yield sim.timeout(5.0)
        locks.release(token)

    def impatient():
        try:
            yield from tlock.acquire("k")
        except LockTimeout:
            outcome["timed_out"] = sim.now
        # The cancelled request must not leave a ghost waiter.
        assert locks.queue_length("k") == 0

    def parent():
        yield sim.all_of([sim.spawn(holder()), sim.spawn(impatient())])

    sim.run_process(parent())
    assert outcome["timed_out"] == 0.5
    assert not locks.is_held("k")


def test_cancel_unknown_acquire_rejected():
    sim = Simulator()
    locks = LockManager(sim)
    with pytest.raises(KVStoreError):
        locks.cancel("k", sim.event())


def test_timeout_lock_bad_budget():
    sim = Simulator()
    with pytest.raises(KVStoreError):
        TimeoutLock(LockManager(sim), budget=0)
