"""Shared fixtures: a small simulated stock I/O stack."""

import pytest

from repro.devices import HDD, HDDSpec
from repro.network import Fabric, NetworkSpec
from repro.pfs import PFS, FileServer, PFSSpec
from repro.mpiio import DirectIO
from repro.sim import Simulator
from repro.units import GiB, KiB


@pytest.fixture
def stack():
    """(sim, layer) over 4 HDD servers and 4 compute nodes."""
    sim = Simulator(seed=7)
    fabric = Fabric(sim, NetworkSpec())
    servers = [
        FileServer(
            sim,
            f"ds{i}",
            HDD(HDDSpec(capacity_bytes=GiB, rotation_mode="expected")),
        )
        for i in range(4)
    ]
    pfs = PFS(sim, "opfs", servers, PFSSpec(stripe_size=64 * KiB))
    layer = DirectIO(sim, pfs, fabric, num_nodes=4)
    return sim, layer
