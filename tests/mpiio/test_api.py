"""Tests for the MPI-IO File API over DirectIO."""

import pytest

from repro.errors import MPIIOError
from repro.mpiio import MPIFile
from repro.units import KiB, MiB


def test_open_write_read_close(stack):
    sim, layer = stack

    def body():
        f = yield from MPIFile.open(layer, 0, "/data", MiB)
        wres = yield from f.write(64 * KiB)
        f.seek(0)
        rres = yield from f.read(64 * KiB)
        yield from f.close()
        return wres, rres

    wres, rres = sim.run_process(body())
    assert rres.segments == [(0, 64 * KiB, wres.stamp)]


def test_file_pointer_advances(stack):
    sim, layer = stack

    def body():
        f = yield from MPIFile.open(layer, 0, "/data", MiB)
        yield from f.write(KiB)
        yield from f.write(KiB)
        assert f.position == 2 * KiB
        yield from f.close()
        return f.results

    results = sim.run_process(body())
    assert [(r.offset, r.size) for r in results] == [(0, KiB), (KiB, KiB)]


def test_read_at_does_not_move_pointer(stack):
    sim, layer = stack

    def body():
        f = yield from MPIFile.open(layer, 0, "/data", MiB)
        yield from f.write_at(0, 4 * KiB)
        yield from f.read_at(KiB, KiB)
        assert f.position == 0
        yield from f.close()

    sim.run_process(body())


def test_seek_modes(stack):
    sim, layer = stack

    def body():
        f = yield from MPIFile.open(layer, 0, "/data", MiB)
        assert f.seek(100) == 100
        assert f.seek(50, "cur") == 150
        with pytest.raises(MPIIOError):
            f.seek(-200, "cur")
        with pytest.raises(MPIIOError):
            f.seek(0, "end")
        yield from f.close()

    sim.run_process(body())


def test_operations_on_closed_file_rejected(stack):
    sim, layer = stack

    def body():
        f = yield from MPIFile.open(layer, 0, "/data", MiB)
        yield from f.close()
        assert not f.is_open
        with pytest.raises(MPIIOError):
            yield from f.read(KiB)
        with pytest.raises(MPIIOError):
            f.seek(0)

    sim.run_process(body())


def test_two_ranks_share_handle_but_not_pointer(stack):
    sim, layer = stack

    def body():
        f0 = yield from MPIFile.open(layer, 0, "/shared", MiB)
        f1 = yield from MPIFile.open(layer, 1, "/shared", MiB)
        assert f0.handle is f1.handle
        assert f0.handle.open_count == 2
        yield from f0.write(KiB)
        assert f0.position == KiB
        assert f1.position == 0
        yield from f0.close()
        yield from f1.close()
        assert f0.handle.open_count == 0

    sim.run_process(body())


def test_ranks_map_to_nodes_round_robin(stack):
    _, layer = stack
    assert layer.node_for(0) == "node0"
    assert layer.node_for(4) == "node0"
    assert layer.node_for(5) == "node1"


def test_unknown_op_rejected(stack):
    sim, layer = stack

    def body():
        f = yield from MPIFile.open(layer, 0, "/data", MiB)
        yield from layer.io(0, f.handle, "erase", 0, KiB)

    sim.spawn(body())
    with pytest.raises(MPIIOError):
        sim.run()
