"""Tests for two-phase collective I/O."""

from repro.mpiio import MPIJob, collective_read, collective_write
from repro.units import KiB, MiB


def interleaved_segments(rank, size, piece=4 * KiB, count=8):
    """Classic interleaved pattern: rank r owns pieces r, r+size, ..."""
    return [((i * size + rank) * piece, piece) for i in range(count)]


def test_collective_write_covers_all_data(stack):
    sim, layer = stack
    nprocs = 4

    def body(ctx):
        f = yield from ctx.open("/coll", 4 * MiB)
        segs = interleaved_segments(ctx.rank, ctx.size)
        yield from collective_write(ctx, f, segs)

    MPIJob(sim, layer, size=nprocs).run(body)
    pfs_file = layer.pfs.open("/coll")
    total = 4 * nprocs * 8 * KiB
    # Every byte of the interleaved region was written exactly once.
    assert pfs_file.content.written_bytes() == total


def test_collective_write_issues_large_contiguous_requests(stack):
    sim, layer = stack
    issued = []

    def body(ctx):
        f = yield from ctx.open("/coll", 4 * MiB)
        segs = interleaved_segments(ctx.rank, ctx.size)
        results = yield from collective_write(ctx, f, segs, num_aggregators=2)
        issued.extend(results)

    MPIJob(sim, layer, size=4).run(body)
    # The interleaved pieces merged into one extent split over 2 aggregators.
    assert len(issued) == 2
    assert all(r.size >= 32 * KiB for r in issued)


def test_collective_read_returns_data_to_all(stack):
    sim, layer = stack

    def body(ctx):
        f = yield from ctx.open("/coll", 4 * MiB)
        if ctx.rank == 0:
            yield from f.write_at(0, MiB)
        yield from ctx.barrier()
        segs = interleaved_segments(ctx.rank, ctx.size)
        yield from collective_read(ctx, f, segs)

    stats = MPIJob(sim, layer, size=4).run(body)
    # Aggregator ranks did the reads; total read bytes == merged extent.
    total_read = sum(s.bytes_read for s in stats)
    assert total_read == 4 * 8 * 4 * KiB


def test_collective_faster_than_independent_interleaved(stack):
    sim, layer = stack
    times = {}

    def independent(ctx):
        f = yield from ctx.open("/ind", 8 * MiB)
        start = ctx.sim.now
        for off, size in interleaved_segments(ctx.rank, ctx.size, count=32):
            yield from f.write_at(off, size)
        yield from ctx.barrier()
        times["independent"] = ctx.sim.now - start

    def collective(ctx):
        f = yield from ctx.open("/coll", 8 * MiB)
        start = ctx.sim.now
        segs = interleaved_segments(ctx.rank, ctx.size, count=32)
        yield from collective_write(ctx, f, segs)
        times["collective"] = ctx.sim.now - start

    MPIJob(sim, layer, size=4).run(independent)
    MPIJob(sim, layer, size=4).run(collective)
    assert times["collective"] < times["independent"]


def test_empty_collective_is_harmless(stack):
    sim, layer = stack

    def body(ctx):
        f = yield from ctx.open("/coll", MiB)
        results = yield from collective_write(ctx, f, [])
        assert results == []

    MPIJob(sim, layer, size=2).run(body)
