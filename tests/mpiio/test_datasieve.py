"""Tests for data sieving."""

import pytest

from repro.errors import MPIIOError
from repro.mpiio import MPIJob, sieve_read, sieve_write
from repro.mpiio.datasieve import coalesce
from repro.units import KiB, MiB


def test_coalesce_merges_within_hole_budget():
    segs = [(0, 10), (15, 10), (100, 10)]
    assert coalesce(segs, max_hole=5) == [(0, 25), (100, 10)]
    assert coalesce(segs, max_hole=0) == segs
    assert coalesce(segs, max_hole=1000) == [(0, 110)]


def test_coalesce_sorts_and_drops_empty():
    assert coalesce([(50, 5), (0, 5), (10, 0)], max_hole=0) == [(0, 5), (50, 5)]


def test_coalesce_rejects_overlap():
    with pytest.raises(MPIIOError):
        coalesce([(0, 10), (5, 10)], max_hole=0)
    with pytest.raises(MPIIOError):
        coalesce([(0, 10)], max_hole=-1)


def test_sieve_read_issues_fewer_requests(stack):
    sim, layer = stack
    segments = [(i * 8 * KiB, 4 * KiB) for i in range(16)]

    def body(ctx):
        f = yield from ctx.open("/data", 4 * MiB)
        yield from f.write_at(0, 2 * MiB)  # populate
        results = yield from sieve_read(f, segments, max_hole=4 * KiB)
        assert len(results) == 1
        assert results[0].size == 16 * 8 * KiB - 4 * KiB

    MPIJob(sim, layer, size=1).run(body)


def test_sieve_read_faster_than_naive(stack):
    sim, layer = stack
    segments = [(i * 8 * KiB, 4 * KiB) for i in range(32)]
    times = {}

    def naive(ctx):
        f = yield from ctx.open("/naive", 4 * MiB)
        yield from f.write_at(0, 2 * MiB)
        start = ctx.sim.now
        for off, size in segments:
            yield from f.read_at(off, size)
        times["naive"] = ctx.sim.now - start

    def sieved(ctx):
        f = yield from ctx.open("/sieved", 4 * MiB)
        yield from f.write_at(0, 2 * MiB)
        start = ctx.sim.now
        yield from sieve_read(f, segments, max_hole=8 * KiB)
        times["sieved"] = ctx.sim.now - start

    MPIJob(sim, layer, size=1).run(naive)
    MPIJob(sim, layer, size=1).run(sieved)
    assert times["sieved"] < times["naive"]


def test_sieve_write_contiguous_skips_read(stack):
    sim, layer = stack

    def body(ctx):
        f = yield from ctx.open("/data", MiB)
        results = yield from sieve_write(f, [(0, 4 * KiB), (4 * KiB, 4 * KiB)],
                                         max_hole=0)
        assert [r.op for r in results] == ["write"]
        assert results[0].size == 8 * KiB

    MPIJob(sim, layer, size=1).run(body)


def test_sieve_write_with_holes_does_rmw(stack):
    sim, layer = stack

    def body(ctx):
        f = yield from ctx.open("/data", MiB)
        results = yield from sieve_write(f, [(0, 4 * KiB), (8 * KiB, 4 * KiB)],
                                         max_hole=4 * KiB)
        # Read-modify-write: one read of the extent, then one write.
        assert [r.op for r in results] == ["read", "write"]
        assert all(r.size == 12 * KiB for r in results)

    MPIJob(sim, layer, size=1).run(body)


def test_coalesce_striped_closes_same_stripe_holes():
    from repro.mpiio.datasieve import coalesce_striped

    stripe = 64
    # Hole of 20 bytes confined to the stripe the next segment starts
    # in: sieved regardless of max_hole.
    segs = [(0, 20), (40, 20)]
    assert coalesce_striped(segs, max_hole=0, stripe=stripe) == [(0, 60)]
    # Hole crossing a stripe boundary still obeys max_hole.
    segs = [(0, 20), (stripe + 10, 20)]
    assert coalesce_striped(segs, max_hole=0, stripe=stripe) == segs
    assert coalesce_striped(segs, max_hole=stripe, stripe=stripe) == [
        (0, stripe + 30)
    ]


def test_coalesce_striped_rejects_bad_stripe():
    from repro.mpiio.datasieve import coalesce_striped

    with pytest.raises(MPIIOError):
        coalesce_striped([(0, 10)], max_hole=0, stripe=0)


def test_sieve_read_stripe_aware_issues_fewer_requests(stack):
    sim, layer = stack
    # 4 KiB pieces every 8 KiB: the 4 KiB holes stay inside one 64 KiB
    # stripe, so stripe-aware sieving merges them even with max_hole=0.
    segments = [(i * 8 * KiB, 4 * KiB) for i in range(8)]

    def body(ctx):
        f = yield from ctx.open("/data", 4 * MiB)
        yield from f.write_at(0, MiB)
        strict = yield from sieve_read(f, segments, max_hole=0)
        aware = yield from sieve_read(f, segments, max_hole=0,
                                      stripe=64 * KiB)
        assert len(strict) == len(segments)
        assert len(aware) < len(strict)
        assert sum(r.size for r in aware) >= sum(s for _, s in segments)

    MPIJob(sim, layer, size=1).run(body)
