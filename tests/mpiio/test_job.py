"""Tests for MPI job execution and barriers."""

import pytest

from repro.errors import MPIIOError
from repro.mpiio import MPIJob
from repro.mpiio.job import Barrier
from repro.units import KiB, MiB


def test_job_runs_all_ranks(stack):
    sim, layer = stack
    seen = []

    def body(ctx):
        f = yield from ctx.open("/shared", MiB)
        yield from f.write_at(ctx.rank * 64 * KiB, 64 * KiB)
        seen.append(ctx.rank)

    stats = MPIJob(sim, layer, size=4).run(body)
    assert sorted(seen) == [0, 1, 2, 3]
    assert len(stats) == 4
    assert all(s.bytes_written == 64 * KiB for s in stats)


def test_open_files_closed_automatically(stack):
    sim, layer = stack
    files = []

    def body(ctx):
        f = yield from ctx.open("/shared", MiB)
        files.append(f)
        yield from f.write(KiB)

    MPIJob(sim, layer, size=2).run(body)
    assert all(not f.is_open for f in files)
    assert files[0].handle.open_count == 0


def test_barrier_synchronises_ranks(stack):
    sim, layer = stack
    arrivals = []
    departures = []

    def body(ctx):
        yield ctx.sim.timeout(float(ctx.rank))
        arrivals.append((ctx.rank, ctx.sim.now))
        yield from ctx.barrier()
        departures.append((ctx.rank, ctx.sim.now))

    MPIJob(sim, layer, size=3).run(body)
    assert [t for _, t in arrivals] == [0.0, 1.0, 2.0]
    assert all(t == 2.0 for _, t in departures)


def test_barrier_is_reusable(stack):
    sim, layer = stack
    log = []

    def body(ctx):
        for phase in range(3):
            yield ctx.sim.timeout(0.5 * (ctx.rank + 1))
            yield from ctx.barrier()
            log.append((phase, ctx.rank, ctx.sim.now))

    MPIJob(sim, layer, size=2).run(body)
    by_phase = {}
    for phase, _, t in log:
        by_phase.setdefault(phase, set()).add(t)
    assert all(len(times) == 1 for times in by_phase.values())


def test_makespan_and_bandwidth(stack):
    sim, layer = stack

    def body(ctx):
        f = yield from ctx.open("/shared", 8 * MiB)
        yield from f.write_at(ctx.rank * MiB, MiB)

    stats = MPIJob(sim, layer, size=4).run(body)
    span = MPIJob.makespan(stats)
    assert span > 0
    bw = MPIJob.aggregate_bandwidth(stats)
    assert bw == pytest.approx(4 * MiB / span)
    assert MPIJob.aggregate_bandwidth(stats, op="read") == 0.0


def test_rank_stats_io_accounting(stack):
    sim, layer = stack

    def body(ctx):
        f = yield from ctx.open("/shared", MiB)
        yield from f.write_at(0, 4 * KiB)
        yield from f.read_at(0, 2 * KiB)

    stats = MPIJob(sim, layer, size=1).run(body)
    assert stats[0].bytes_written == 4 * KiB
    assert stats[0].bytes_read == 2 * KiB
    assert stats[0].io_time > 0


def test_job_needs_ranks(stack):
    sim, layer = stack
    with pytest.raises(MPIIOError):
        MPIJob(sim, layer, size=0)


def test_barrier_needs_parties(stack):
    sim, _ = stack
    with pytest.raises(MPIIOError):
        Barrier(sim, 0)
