"""Tests for MPI-IO file views and nonblocking operations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MPIIOError
from repro.mpiio import (
    FileView,
    MPIFile,
    ViewedFile,
    iread_at,
    iwrite_at,
    waitall,
)
from repro.units import KiB, MiB


# -- FileView mapping (pure) -------------------------------------------

def test_contiguous_view_is_identity():
    view = FileView.contiguous()
    assert view.map_range(1234, 100) == [(1234, 100)]


def test_contiguous_view_with_displacement():
    view = FileView.contiguous(displacement=1000)
    assert view.map_range(0, 100) == [(1000, 100)]


def test_strided_view_maps_blocks():
    view = FileView.strided(displacement=0, block=100, stride=300)
    assert view.map_range(0, 250) == [(0, 100), (300, 100), (600, 50)]


def test_strided_view_mid_block_start():
    view = FileView.strided(displacement=50, block=100, stride=300)
    # View offset 30 is inside instance 0's block.
    assert view.map_range(30, 100) == [(80, 70), (350, 30)]


def test_tiled_view_multiple_segments():
    view = FileView(
        displacement=0,
        segments=((0, 10), (50, 20)),
        extent=100,
    )
    assert view.bytes_per_instance == 30
    # 45 bytes: instance0 (10+20), instance1 (10 + 5 of second segment)
    assert view.map_range(0, 45) == [
        (0, 10), (50, 20), (100, 10), (150, 5)
    ]


def test_view_validation():
    with pytest.raises(MPIIOError):
        FileView(-1, ((0, 10),), 10)
    with pytest.raises(MPIIOError):
        FileView(0, (), 10)
    with pytest.raises(MPIIOError):
        FileView(0, ((0, 10), (5, 10)), 100)  # overlap
    with pytest.raises(MPIIOError):
        FileView(0, ((0, 10),), 5)  # extent smaller than pattern
    with pytest.raises(MPIIOError):
        FileView.contiguous().map_range(-1, 10)


@given(
    block=st.integers(1, 64),
    hole=st.integers(0, 64),
    displacement=st.integers(0, 100),
    view_offset=st.integers(0, 500),
    size=st.integers(1, 300),
)
@settings(max_examples=200, deadline=None)
def test_strided_mapping_properties(block, hole, displacement, view_offset, size):
    view = FileView.strided(displacement, block, block + hole)
    segments = view.map_range(view_offset, size)
    # Total bytes mapped == requested size.
    assert sum(length for _, length in segments) == size
    # Segments ascend and never overlap.
    for (o1, l1), (o2, _) in zip(segments, segments[1:]):
        assert o1 + l1 <= o2
    # Byte-level check against a brute-force enumeration.
    flat = []
    v = 0
    instance = 0
    while v < view_offset + size:
        base = displacement + instance * (block + hole)
        for b in range(block):
            if v >= view_offset and v < view_offset + size:
                flat.append(base + b)
            v += 1
        instance += 1
    covered = [
        offset + i for offset, length in segments for i in range(length)
    ]
    assert covered == flat


# -- ViewedFile over the stack -------------------------------------------

def test_viewed_file_round_trip(stack):
    sim, layer = stack

    def body():
        f = yield from MPIFile.open(layer, 0, "/data", 4 * MiB)
        viewed = ViewedFile(f, FileView.strided(0, 8 * KiB, 24 * KiB))
        writes = yield from viewed.write_at(0, 24 * KiB)  # 3 blocks
        assert [(r.offset, r.size) for r in writes] == [
            (0, 8 * KiB), (24 * KiB, 8 * KiB), (48 * KiB, 8 * KiB)
        ]
        reads = yield from viewed.read_at(0, 24 * KiB)
        for w, r in zip(writes, reads):
            assert r.segments == [(w.offset, w.offset + w.size, w.stamp)]
        yield from f.close()

    sim.run_process(body())


def test_viewed_file_pointer(stack):
    sim, layer = stack

    def body():
        f = yield from MPIFile.open(layer, 0, "/data", 4 * MiB)
        viewed = ViewedFile(f, FileView.strided(0, 8 * KiB, 16 * KiB))
        yield from viewed.write(8 * KiB)
        yield from viewed.write(8 * KiB)
        assert viewed.position == 16 * KiB
        # Second write landed at the second block (file offset 16KB).
        assert f.results[-1].offset == 16 * KiB
        viewed.set_view(FileView.contiguous())
        assert viewed.position == 0
        yield from f.close()

    sim.run_process(body())


# -- nonblocking ------------------------------------------------------------

def test_nonblocking_overlap(stack):
    sim, layer = stack

    def body():
        f = yield from MPIFile.open(layer, 0, "/data", 16 * MiB)
        start = sim.now
        requests = [
            iwrite_at(f, i * MiB, 256 * KiB) for i in range(4)
        ]
        assert not all(r.complete for r in requests)
        results = yield from waitall(requests)
        elapsed_parallel = sim.now - start

        start = sim.now
        for i in range(4, 8):
            yield from f.write_at(i * MiB, 256 * KiB)
        elapsed_serial = sim.now - start
        yield from f.close()
        return results, elapsed_parallel, elapsed_serial

    results, parallel, serial = sim.run_process(body())
    assert len(results) == 4
    assert all(r.stamp is not None for r in results)
    assert parallel < serial  # overlap actually happened


def test_iread_wait_single(stack):
    sim, layer = stack

    def body():
        f = yield from MPIFile.open(layer, 0, "/data", MiB)
        w = yield from f.write_at(0, 64 * KiB)
        req = iread_at(f, 0, 64 * KiB)
        res = yield from req.wait()
        assert req.complete
        assert res.segments == [(0, 64 * KiB, w.stamp)]
        yield from f.close()

    sim.run_process(body())


def test_waitall_empty(stack):
    sim, _ = stack

    def body():
        results = yield from waitall([])
        assert results == []
        return True
        yield  # pragma: no cover

    assert sim.run_process(body())
