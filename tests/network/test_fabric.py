"""Unit tests for the network fabric model."""

import pytest

from repro.errors import ConfigError, NetworkError
from repro.network import Fabric, NetworkSpec
from repro.sim import Simulator
from repro.units import MiB


def make_fabric(sim, **spec):
    fabric = Fabric(sim, NetworkSpec(**spec)) if spec else Fabric(sim)
    for name in ("c0", "c1", "s0", "s1"):
        fabric.add_endpoint(name)
    return fabric


def test_transfer_time_is_latency_plus_wire():
    sim = Simulator()
    fabric = make_fabric(sim, bandwidth=100 * MiB, latency=1e-4)

    def body():
        yield from fabric.transfer("c0", "s0", 10 * MiB)
        return sim.now

    end = sim.run_process(body())
    assert end == pytest.approx(1e-4 + (10 * MiB) / (100 * MiB))


def test_same_endpoint_transfer_is_free():
    sim = Simulator()
    fabric = make_fabric(sim)

    def body():
        yield from fabric.transfer("c0", "c0", 100 * MiB)
        return sim.now

    assert sim.run_process(body()) == 0.0


def test_concurrent_transfers_to_one_server_serialise():
    sim = Simulator()
    fabric = make_fabric(sim, bandwidth=100 * MiB, latency=0.0)

    def sender(src):
        yield from fabric.transfer(src, "s0", 100 * MiB)
        return sim.now

    def parent():
        return (
            yield sim.all_of(
                [sim.spawn(sender("c0")), sim.spawn(sender("c1"))]
            )
        )

    ends = sim.run_process(parent())
    # Both flows share s0's RX channel: 1s then 2s.
    assert sorted(ends) == pytest.approx([1.0, 2.0])


def test_transfers_to_distinct_servers_run_in_parallel():
    sim = Simulator()
    fabric = make_fabric(sim, bandwidth=100 * MiB, latency=0.0)

    def sender(src, dst):
        yield from fabric.transfer(src, dst, 100 * MiB)
        return sim.now

    def parent():
        return (
            yield sim.all_of(
                [sim.spawn(sender("c0", "s0")), sim.spawn(sender("c1", "s1"))]
            )
        )

    assert sim.run_process(parent()) == pytest.approx([1.0, 1.0])


def test_rate_limited_by_slower_endpoint():
    sim = Simulator()
    fabric = Fabric(sim, NetworkSpec(bandwidth=100 * MiB, latency=0.0))
    fabric.add_endpoint("fast", bandwidth=100 * MiB)
    fabric.add_endpoint("slow", bandwidth=10 * MiB)

    def body():
        yield from fabric.transfer("fast", "slow", 10 * MiB)
        return sim.now

    assert sim.run_process(body()) == pytest.approx(1.0)


def test_request_response_round_trip():
    sim = Simulator()
    fabric = make_fabric(sim, bandwidth=100 * MiB, latency=1e-3)

    def body():
        yield from fabric.request_response("c0", "s0", 0, 100 * MiB)
        return sim.now

    assert sim.run_process(body()) == pytest.approx(2e-3 + 1.0)


def test_unknown_endpoint_rejected():
    sim = Simulator()
    fabric = make_fabric(sim)

    def body():
        yield from fabric.transfer("c0", "nowhere", 10)

    sim.spawn(body())
    with pytest.raises(NetworkError):
        sim.run()


def test_stats_accumulate():
    sim = Simulator()
    fabric = make_fabric(sim)

    def body():
        yield from fabric.transfer("c0", "s0", 1000)
        yield from fabric.transfer("s0", "c0", 500)

    sim.run_process(body())
    assert fabric.total_transfers == 2
    assert fabric.total_bytes == 1500
    assert fabric.endpoint("c0").bytes_sent == 1000
    assert fabric.endpoint("s0").bytes_received == 1000


def test_add_endpoint_idempotent():
    sim = Simulator()
    fabric = Fabric(sim)
    a = fabric.add_endpoint("x")
    b = fabric.add_endpoint("x")
    assert a is b


def test_bad_spec_rejected():
    with pytest.raises(ConfigError):
        NetworkSpec(bandwidth=0)
    with pytest.raises(ConfigError):
        NetworkSpec(latency=-1)
