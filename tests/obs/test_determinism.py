"""Tracing must observe the simulation without perturbing it.

Same seed, same workload, tracing on vs off: identical phase
durations, identical cache counters, identical RNG stream states.
"""

from repro.cluster import ClusterSpec, run_workload
from repro.obs import Tracer
from repro.workloads import IORWorkload


def _run(obs):
    spec = ClusterSpec(num_dservers=2, num_cservers=1, num_nodes=2, seed=13)
    workload = IORWorkload(2, 16 * 1024, 4 * 1024 * 1024,
                           pattern="random", seed=13, requests_per_rank=12)
    return run_workload(spec, workload, s4d=True, obs=obs, read_runs=2)


def _rng_states(cluster):
    return {
        name: stream.getstate()
        for name, stream in cluster.sim.rng._streams.items()
    }


def test_tracing_is_invisible_to_the_simulation():
    tracer = Tracer()
    traced = _run(obs=tracer)
    plain = _run(obs=None)

    assert len(tracer) > 0, "tracer captured nothing"
    assert plain.phases.keys() == traced.phases.keys()
    for phase in plain.phases:
        assert plain.phases[phase].duration == traced.phases[phase].duration
        assert (plain.phases[phase].bytes_moved
                == traced.phases[phase].bytes_moved)
    assert plain.cluster.sim.now == traced.cluster.sim.now
    assert plain.metrics.as_dict() == traced.metrics.as_dict()
    assert _rng_states(plain.cluster) == _rng_states(traced.cluster)
