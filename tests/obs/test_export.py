"""Exporter tests: JSONL, Chrome trace-event JSON, nesting validator."""

import json

from repro.cluster import ClusterSpec, run_workload
from repro.obs import (
    Tracer,
    component_pids,
    to_chrome,
    to_jsonl,
    validate_nesting,
)
from repro.sim import Simulator
from repro.workloads import IORWorkload


def _small_traced_run(seed=7):
    spec = ClusterSpec(num_dservers=2, num_cservers=1, num_nodes=2, seed=seed)
    workload = IORWorkload(2, 16 * 1024, 4 * 1024 * 1024,
                           pattern="random", seed=seed, requests_per_rank=8)
    tracer = Tracer()
    run_workload(spec, workload, s4d=True, obs=tracer, read_runs=1)
    return tracer


def _synthetic_tracer():
    sim = Simulator(seed=1)
    tracer = Tracer(sim)
    ctx = tracer.request(0, "read", "/f", 0, 4096)

    def flow():
        span = ctx.begin("service", cat="server", component="dserver0")
        yield sim.timeout(0.25)
        ctx.end(span)
        ctx.finish()

    sim.run_process(flow())
    return tracer


def test_jsonl_round_trips():
    tracer = _synthetic_tracer()
    lines = [json.loads(line) for line in to_jsonl(tracer).splitlines()]
    assert len(lines) == 2
    assert lines[0]["name"] == "read"
    assert lines[1]["parent_id"] == lines[0]["span_id"]
    assert lines[1]["duration"] == 0.25


def test_chrome_trace_parses_as_json():
    tracer = _small_traced_run()
    data = json.loads(json.dumps(to_chrome(tracer)))
    events = data["traceEvents"]
    assert events, "empty trace"
    phases = {e["ph"] for e in events}
    assert "X" in phases and "M" in phases
    for event in events:
        if event["ph"] == "X":
            assert event["dur"] >= 0.0
            assert "span_id" in event["args"]


def test_chrome_trace_has_expected_components():
    tracer = _small_traced_run()
    names = {
        e["args"]["name"]
        for e in to_chrome(tracer)["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert "app" in names
    assert any(n.startswith("dserver") for n in names)
    assert any("/" in n for n in names), "no device processes"
    assert any(n.startswith("nic:") for n in names)


def test_spans_nest_cleanly_in_real_run():
    tracer = _small_traced_run()
    assert validate_nesting(tracer) == []
    assert tracer.stats().open_spans == 0
    # Every expected layer shows up in the span stream.
    cats = {s.cat for s in tracer.spans}
    assert {"mpiio", "middleware", "pfs", "network", "server",
            "device"} <= cats


def test_pid_tid_stable_across_same_seed_runs():
    first = _small_traced_run(seed=11)
    second = _small_traced_run(seed=11)
    assert component_pids(first) == component_pids(second)

    def pid_tid_pairs(tracer):
        pids = component_pids(tracer)
        return [
            (pids[s.component], s.tid, s.name) for s in tracer.spans
        ]

    assert pid_tid_pairs(first) == pid_tid_pairs(second)


def test_unfinished_spans_export_with_null_end():
    sim = Simulator(seed=1)
    tracer = Tracer(sim)
    tracer.request(0, "read", "/f", 0, 1)  # never finished
    (line,) = [json.loads(l) for l in to_jsonl(tracer).splitlines()]
    assert line["end"] is None
    (event,) = [e for e in to_chrome(tracer)["traceEvents"]
                if e["ph"] == "X"]
    assert event["dur"] == 0.0
