"""MetricsRegistry and summarize() tests."""

import json

import pytest

from repro.cluster import ClusterSpec, run_workload
from repro.errors import ConfigError
from repro.obs import MetricsRegistry, Tracer, registry_for_cluster, summarize
from repro.sim import Simulator
from repro.sim.monitor import Counter, IntervalLog, Tally, TimeWeighted
from repro.workloads import IORWorkload


def test_summarize_monitor_primitives():
    counter = Counter("c")
    counter.add(10.0)
    assert summarize(counter) == {"count": 1, "total": 10.0, "mean": 10.0}

    tally = Tally("t")
    tally.observe(2.0)
    tally.observe(4.0)
    summary = summarize(tally)
    assert summary["count"] == 2
    assert summary["min"] == 2.0 and summary["max"] == 4.0

    sim = Simulator(seed=0)
    tw = TimeWeighted(sim, initial=3.0)
    assert summarize(tw) == {"level": 3.0, "average": 3.0}

    log = IntervalLog()
    log.record(0.0, 1.0)
    assert summarize(log) == {"intervals": 1, "busy_time": 1.0}


def test_summarize_misc_values():
    assert summarize(7) == 7
    assert summarize("x") == "x"
    assert summarize(None) is None
    assert summarize(True) is True
    assert summarize(lambda: 5) == 5
    assert summarize({"a": 1}) == {"a": 1}

    class WithDict:
        def as_dict(self):
            return {"k": 1}

    assert summarize(WithDict()) == {"k": 1}
    assert isinstance(summarize(object()), str)  # repr fallback


def test_registry_nesting_and_duplicates():
    registry = MetricsRegistry()
    registry.register("a.b.c", 1)
    registry.register("a.b.d", 2)
    registry.register("top", 3)
    assert registry.snapshot() == {"a": {"b": {"c": 1, "d": 2}}, "top": 3}
    assert registry.names() == ["a.b.c", "a.b.d", "top"]
    assert "top" in registry and len(registry) == 3
    with pytest.raises(ConfigError):
        registry.register("top", 4)
    with pytest.raises(ConfigError):
        registry.register("", 4)


def test_registry_conveniences_and_json():
    registry = MetricsRegistry()
    registry.counter("reqs").add(2.0)
    registry.tally("lat").observe(1.0)
    data = json.loads(registry.to_json())
    assert data["reqs"]["count"] == 1
    assert data["lat"]["mean"] == 1.0


def test_registry_for_cluster_snapshot(tmp_path):
    spec = ClusterSpec(num_dservers=2, num_cservers=1, num_nodes=2, seed=5)
    workload = IORWorkload(2, 16 * 1024, 4 * 1024 * 1024,
                           pattern="random", seed=5, requests_per_rank=8)
    tracer = Tracer()
    result = run_workload(spec, workload, s4d=True, obs=tracer, read_runs=1)
    registry = registry_for_cluster(result.cluster, tracer=tracer)

    snapshot = registry.snapshot()
    assert snapshot["sim"]["now"] > 0
    assert "dserver0" in snapshot["servers"]
    assert snapshot["servers"]["dserver0"]["device"]["kind"] == "hdd"
    assert snapshot["network"]["total_bytes"] > 0
    assert snapshot["cache"]["metrics"]["benefit_evaluations"] > 0
    assert 0.0 <= snapshot["cache"]["metrics"]["read_hit_ratio"] <= 1.0
    assert snapshot["tracer"]["spans"] == len(tracer)

    out = tmp_path / "metrics.json"
    registry.write_json(str(out))
    assert json.loads(out.read_text())["sim"]["now"] == snapshot["sim"]["now"]
