"""The live monitor: incremental tail, table rendering, CLI."""

import json

from repro.obs.streaming.monitor import SeriesTail, main, render_table


def _write_rows(path, rows, mode="w"):
    with open(path, mode) as fh:
        for row in rows:
            fh.write(json.dumps(row) + "\n")


ROWS = [
    {"t": 1.0, "run": 0, "phase": "write", "series": "cache.read_hits",
     "kind": "counter", "count": 10, "window_count": 4, "rate": 4.0},
    {"t": 1.0, "run": 0, "phase": "write", "series": "cache.read_hit_ratio",
     "kind": "gauge", "value": 0.625},
    {"t": 1.0, "run": 0, "phase": "write", "series": "mw.request_latency",
     "kind": "latency", "count": 14, "p50": 0.001, "p99": 0.004,
     "p999": 0.0041},
]


def test_tail_keeps_latest_row_per_series(tmp_path):
    path = tmp_path / "series.jsonl"
    newer = dict(ROWS[0], t=2.0, count=25)
    _write_rows(path, ROWS + [newer])
    tail = SeriesTail(str(path))
    assert tail.poll() == 4
    assert tail.rows_seen == 4
    assert tail.last_t == 2.0
    assert tail.latest["cache.read_hits"]["count"] == 25


def test_tail_incremental_poll(tmp_path):
    path = tmp_path / "series.jsonl"
    _write_rows(path, ROWS[:1])
    tail = SeriesTail(str(path))
    assert tail.poll() == 1
    assert tail.poll() == 0  # nothing new
    _write_rows(path, ROWS[1:], mode="a")
    assert tail.poll() == 2  # only the appended lines are re-read


def test_tail_tolerates_garbage_and_missing_file(tmp_path):
    missing = SeriesTail(str(tmp_path / "nope.jsonl"))
    assert missing.poll() == 0
    path = tmp_path / "series.jsonl"
    with open(path, "w") as fh:
        fh.write("not json\n\n")
        fh.write(json.dumps(ROWS[0]) + "\n")
        fh.write('{"no_series_key": 1}\n')
    tail = SeriesTail(str(path))
    assert tail.poll() == 1
    assert set(tail.latest) == {"cache.read_hits"}


def test_render_table_sections(tmp_path):
    path = tmp_path / "series.jsonl"
    _write_rows(path, ROWS)
    tail = SeriesTail(str(path))
    tail.poll()
    table = render_table(tail)
    assert "t=1.000s" in table
    assert "counter" in table and "cache.read_hits" in table
    assert "gauge" in table and "0.625" in table
    assert "latency" in table and "mw.request_latency" in table
    assert "4.00ms" in table  # p99 in milliseconds


def test_main_once_prints_table(tmp_path, capsys):
    path = tmp_path / "series.jsonl"
    _write_rows(path, ROWS)
    assert main([str(path), "--once"]) == 0
    out = capsys.readouterr().out
    assert "cache.read_hits" in out
    assert "mw.request_latency" in out
