"""EngineProfiler: wall-time attribution without result perturbation."""

from repro.obs.streaming import EngineProfiler, component_of
from repro.sim import Simulator


def _worker(sim, log, delay, rounds):
    for _ in range(rounds):
        yield sim.timeout(delay)
        log.append(sim.now)


def _drive(profiled):
    sim = Simulator(seed=5)
    log = []
    for i in range(3):
        sim.spawn(_worker(sim, log, 0.1 * (i + 1), 5), name=f"rank{i}")
    sim.spawn(_worker(sim, log, 0.07, 4), name="read:/data/f.dat")
    profiler = EngineProfiler(sim) if profiled else None
    sim.run()
    return sim, log, profiler


def test_profiled_run_is_bit_identical():
    _, plain_log, _ = _drive(profiled=False)
    _, prof_log, _ = _drive(profiled=True)
    assert [t.hex() for t in plain_log] == [t.hex() for t in prof_log]


def test_report_attributes_by_component():
    sim, _, profiler = _drive(profiled=True)
    components = {row["component"] for row in profiler.report()}
    # rank0/rank1/rank2 fold into "rank"; "read:/data/f.dat" -> "read".
    assert "rank" in components
    assert "read" in components
    by_name = {row["component"]: row for row in profiler.report()}
    # Every timeout dispatch is charged to the process that waits on
    # it, plus spawn/teardown events — at least one per round.
    assert by_name["rank"]["events"] >= 15
    assert by_name["read"]["events"] >= 4
    assert profiler.total_events >= 19
    assert profiler.total_wall > 0.0
    shares = sum(row["share"] for row in profiler.report())
    assert shares <= 1.0 + 1e-9


def test_render_mentions_components_and_overhead():
    _, _, profiler = _drive(profiled=True)
    text = profiler.render()
    assert "engine wall-time by component" in text
    assert "rank" in text
    assert "(pop/bookkeeping)" in text


def test_detach_restores_plain_loop():
    sim = Simulator(seed=5)
    profiler = EngineProfiler(sim)
    assert sim._profiler is profiler
    profiler.detach()
    assert sim._profiler is None
    # Detaching someone else's profiler is a no-op.
    p1 = EngineProfiler(sim)
    p2 = EngineProfiler(sim)
    p1.detach()  # p2 owns the slot now
    assert sim._profiler is p2


def test_component_of_name_folding():
    sim = Simulator(seed=1)
    proc = sim.spawn(_worker(sim, [], 0.1, 1), name="dserver7")
    assert component_of(proc) == "dserver"
    # Unnamed processes fall back to the generator's function name.
    anon = sim.spawn(_worker(sim, [], 0.1, 1))
    assert component_of(anon) == "_worker"
    sim.run()
