"""Sampler cadence, pause determinism, writers, hub registry."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs.streaming import (
    CSV_COLUMNS,
    Sampler,
    StreamHub,
    make_writer,
)
from repro.sim import Simulator


def _emitter(sim, series, period, count):
    for i in range(count):
        yield sim.timeout(period)
        series.observe(1e-3 * (i + 1))


def _build(tmp_path, fmt="jsonl", interval=1.0):
    sim = Simulator(seed=3)
    hub = StreamHub(sim, window=interval)
    writer = make_writer(str(tmp_path / f"series.{fmt}"), fmt)
    sampler = Sampler(sim, hub, writer, interval)
    return sim, hub, writer, sampler


def _jsonl_rows(path):
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


def test_sampler_cadence_one_row_per_series_per_tick(tmp_path):
    sim, hub, writer, sampler = _build(tmp_path)
    latency = hub.latency("svc.latency")
    hub.counter("svc.ops")
    sim.spawn(_emitter(sim, latency, 0.25, 20))  # runs 0.25 .. 5.0
    sampler.start()
    sim.run(until=5.0)
    sampler.close()
    rows = _jsonl_rows(writer.path)
    # 5 ticks at t=1..5 (the emitter keeps the sim alive through 5.0),
    # plus the final pause() sample; 2 series each.
    assert sampler.samples_taken == 6
    assert len(rows) == 12
    ticks = sorted({row["t"] for row in rows})
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]
    final = [row for row in rows if row["series"] == "svc.latency"][-1]
    assert final["count"] == 20
    assert final["kind"] == "latency"
    assert {"p50", "p99", "p999", "window_count"} <= set(final)


def test_sampler_pause_cancels_tick_without_clock_impact(tmp_path):
    def drive(sampled):
        sim = Simulator(seed=3)
        log = []

        def body():
            for i in range(4):
                yield sim.timeout(0.3)
                log.append(sim.now)

        sim.spawn(body())
        if sampled:
            hub = StreamHub(sim)
            writer = make_writer(str(tmp_path / "pause.jsonl"), "jsonl")
            sampler = Sampler(sim, hub, writer, interval=0.5)
            sampler.start()
            sim.run(until=0.6)
            sampler.pause()  # cancels the pending t=1.0 tick
            assert not sampler.running
            sim.run()
            sampler.close()
        else:
            sim.run(until=0.6)
            sim.run()
        return [t.hex() for t in log] + [sim.now.hex()]

    assert drive(sampled=True) == drive(sampled=False)


def test_sampler_restart_after_pause(tmp_path):
    sim, hub, writer, sampler = _build(tmp_path)
    series = hub.counter("ops")
    sim.spawn(_emitter(sim, hub.latency("lat"), 0.2, 30))
    series.add(1.0)
    sampler.start()
    sampler.start()  # idempotent
    sim.run(until=2.0)
    sampler.pause()
    taken = sampler.samples_taken
    sampler.phase = "second"
    sampler.start()
    sim.run(until=6.5)
    sampler.close()
    assert sampler.samples_taken > taken
    rows = _jsonl_rows(writer.path)
    assert {row["phase"] for row in rows} == {None, "second"}


def test_csv_writer_schema(tmp_path):
    sim, hub, writer, sampler = _build(tmp_path, fmt="csv")
    hub.counter("ops").add(3.0)
    hub.gauge("depth", lambda: 7.0)
    sim.spawn(_emitter(sim, hub.latency("lat"), 0.5, 4))
    sampler.start()
    sim.run(until=2.0)  # the sampler ticks forever; bound the run
    sampler.close()
    with open(writer.path) as fh:
        header = fh.readline().strip().split(",")
        body = fh.read().strip().splitlines()
    assert header == list(CSV_COLUMNS)
    assert body  # one line per series per tick
    assert all(len(line.split(",")) == len(CSV_COLUMNS) for line in body)


def test_make_writer_rejects_unknown_format(tmp_path):
    with pytest.raises(ConfigError):
        make_writer(str(tmp_path / "x.bin"), "parquet")


def test_sampler_rejects_nonpositive_interval(tmp_path):
    sim = Simulator(seed=1)
    hub = StreamHub(sim)
    writer = make_writer(str(tmp_path / "x.jsonl"), "jsonl")
    with pytest.raises(ConfigError):
        Sampler(sim, hub, writer, interval=0.0)
    writer.close()


def test_hub_registry_dedup_and_validation():
    sim = Simulator(seed=1)
    hub = StreamHub(sim)
    a = hub.counter("cache.hits")
    assert hub.counter("cache.hits") is a  # same name -> same series
    assert hub.latency("lat") is hub.latency("lat")
    with pytest.raises(ConfigError):
        hub.gauge("cache.hits", lambda: 0.0)  # cross-kind collision
    assert "cache.hits" in hub
    assert len(hub) == 2
    assert hub.names() == ["cache.hits", "lat"]
    assert hub.get("lat").kind == "latency"


def test_hub_rows_sorted_and_typed():
    sim = Simulator(seed=1)
    hub = StreamHub(sim)
    hub.gauge("z.gauge", lambda: 1.5)
    hub.counter("a.counter").add(2.0)
    hub.tally("m.tally").observe(4.0)
    rows = hub.rows()
    assert [row["series"] for row in rows] == ["a.counter", "m.tally",
                                               "z.gauge"]
    kinds = {row["series"]: row["kind"] for row in rows}
    assert kinds == {"a.counter": "counter", "m.tally": "tally",
                     "z.gauge": "gauge"}


def test_buffered_series_memory_bounded():
    # A hook storm between sample ticks must not grow memory without
    # bound: the flat buffer self-drains at the cap.
    from repro.obs.streaming.hub import _BUFFER_CAP

    sim = Simulator(seed=1)
    hub = StreamHub(sim)
    latency = hub.latency("lat")
    counter = hub.counter("ops")
    for i in range(5 * _BUFFER_CAP):
        latency.observe(1e-4)
        counter.add(1.0)
        assert len(latency._buf) < _BUFFER_CAP
        assert len(counter._buf) < _BUFFER_CAP
    assert latency.count == 5 * _BUFFER_CAP
    assert counter.as_dict()["count"] == 5 * _BUFFER_CAP
