"""Acceptance: streaming telemetry is faithful and perturbation-free.

- golden digests (sim clock, bandwidths) are bit-identical with
  telemetry on and off;
- the final sampled window agrees with the end-of-run registry
  snapshot (hit ratio exactly, cache counters event-for-event);
- the time series contains hit-ratio and per-component P99 rows.
"""

import json

import pytest

from repro.cluster import ClusterSpec, run_workload
from repro.obs.metrics import registry_for_cluster
from repro.obs.streaming import StreamTelemetry
from repro.units import KiB, MiB
from repro.workloads import IORWorkload


def _spec_and_workload():
    spec = ClusterSpec(num_dservers=4, num_cservers=2, num_nodes=4, seed=42)
    workload = IORWorkload(4, 16 * KiB, 16 * MiB, pattern="random",
                           seed=42, requests_per_rank=16)
    return spec, workload


def _digests(result):
    sim = result.cluster.sim
    return (
        sim.now.hex(),
        result.write_bandwidth.hex(),
        result.read_bandwidth.hex(),
    )


@pytest.fixture(scope="module")
def telemetered_run(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("series")
    series_path = tmp / "series.jsonl"
    metrics_path = tmp / "metrics.json"
    spec, workload = _spec_and_workload()
    session = StreamTelemetry(
        series_path=str(series_path),
        metrics_path=str(metrics_path),
        interval=0.5,
    )
    with session.activate():
        result = run_workload(spec, workload, s4d=True)
    session.close()
    with open(series_path) as fh:
        rows = [json.loads(line) for line in fh if line.strip()]
    return result, rows, metrics_path


def test_digests_identical_with_and_without_telemetry(telemetered_run):
    result_on, _, _ = telemetered_run
    spec, workload = _spec_and_workload()
    result_off = run_workload(spec, workload, s4d=True)
    assert _digests(result_on) == _digests(result_off)


def test_series_rows_schema(telemetered_run):
    _, rows, _ = telemetered_run
    assert rows
    for row in rows:
        assert {"t", "run", "phase", "series", "kind"} <= set(row)
    kinds = {row["kind"] for row in rows}
    assert kinds == {"counter", "tally", "gauge", "latency"}


def test_hit_ratio_and_p99_rows_present(telemetered_run):
    _, rows, _ = telemetered_run
    names = {row["series"] for row in rows}
    assert "cache.read_hit_ratio" in names
    latencies = {row["series"] for row in rows
                 if row["kind"] == "latency"}
    # Per-component latency: middleware requests, PFS rounds, servers.
    assert "mw.request_latency" in latencies
    assert "pfs.cpfs.round_latency" in latencies
    assert "pfs.opfs.round_latency" in latencies
    assert any(name.startswith("server.") for name in latencies)
    for row in rows:
        if row["kind"] == "latency":
            assert "p99" in row and "p50" in row and "p999" in row


def test_final_window_agrees_with_registry_snapshot(telemetered_run):
    result, rows, _ = telemetered_run
    snapshot = registry_for_cluster(result.cluster).snapshot()
    metrics = snapshot["cache"]["metrics"]

    def final(series):
        return [row for row in rows if row["series"] == series][-1]

    # The gauge reads the same counters the registry snapshots, at the
    # same (end-of-run) sim time: exact equality, not approximation.
    assert final("cache.read_hit_ratio")["value"] == (
        metrics["read_hit_ratio"]
    )
    assert final("cache.read_hits")["count"] == metrics["read_hits"]
    assert final("cache.read_misses")["count"] == metrics["read_misses"]
    assert final("cache.admissions")["count"] == metrics["write_admitted"]
    assert final("cache.bounces")["count"] == metrics["write_bounced"]


def test_metrics_snapshot_file_written(telemetered_run):
    _, _, metrics_path = telemetered_run
    with open(metrics_path) as fh:
        document = json.load(fh)
    assert document["cache"]["metrics"]["read_hits"] >= 0
    assert "pfs" in document or "network" in document
