"""Streaming stats primitives: sketches vs exact, rollup vs oracle.

The telemetry plane's sketches claim bounded error and O(1) memory;
both claims are checked here against exact references
(``statistics.quantiles``, a brute-force windowed oracle) on seeded
streams.
"""

import math
import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.obs.streaming import (
    LogHistogram,
    P2Quantile,
    QuantileSketch,
    ReservoirSample,
    WindowedCounter,
    WindowedTally,
)


class Clock:
    __slots__ = ("now",)

    def __init__(self, now=0.0):
        self.now = now


def exact_quantile(data, q):
    """Fractional-rank quantile matching the sketches' convention."""
    data = sorted(data)
    rank = q * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return data[lo] + (data[hi] - data[lo]) * frac


# -- LogHistogram ---------------------------------------------------------
@pytest.mark.parametrize("seed", [1, 7, 42])
@pytest.mark.parametrize("dist", ["expo", "lognorm", "uniform"])
def test_log_histogram_relative_error_bound(seed, dist):
    rng = random.Random(seed)
    draw = {
        "expo": lambda: rng.expovariate(1000.0),
        "lognorm": lambda: rng.lognormvariate(-7.0, 1.5),
        "uniform": lambda: rng.uniform(1e-5, 1e-2),
    }[dist]
    data = [draw() for _ in range(20_000)]
    hist = LogHistogram()
    for x in data:
        hist.observe(x)
    bound = 1.0 / hist.subbuckets
    for q in (0.5, 0.9, 0.99, 0.999):
        exact = exact_quantile(data, q)
        estimate = hist.quantile(q)
        assert abs(estimate - exact) <= bound * exact + 1e-12, (
            q, estimate, exact
        )


def test_log_histogram_vs_statistics_quantiles():
    rng = random.Random(3)
    data = [rng.expovariate(200.0) for _ in range(9_999)]
    hist = LogHistogram()
    hist.observe_many(data)
    # statistics.quantiles(n=100, method="inclusive") uses the same
    # fractional-rank convention as LogHistogram.quantile.
    cuts = statistics.quantiles(data, n=100, method="inclusive")
    for pct in (50, 90, 99):
        exact = cuts[pct - 1]
        estimate = hist.quantile(pct / 100.0)
        assert abs(estimate - exact) <= exact / hist.subbuckets + 1e-12


def test_log_histogram_bulk_equals_scalar_exactly():
    rng = random.Random(11)
    values = [rng.expovariate(500.0) for _ in range(4_000)]
    values += [0.0, -1.0, 1e-300, 5e6]  # underflow + clamp edges
    bulk, scalar = LogHistogram(), LogHistogram()
    bulk.observe_many(values)
    for v in values:
        scalar.observe(v)
    assert bulk._bins == scalar._bins
    assert bulk._underflow == scalar._underflow
    assert bulk.count == scalar.count
    for q in (0.01, 0.5, 0.999):
        assert bulk.quantile(q) == scalar.quantile(q)


def test_log_histogram_multi_quantile_single_walk():
    rng = random.Random(5)
    hist = LogHistogram()
    hist.observe_many([rng.expovariate(100.0) for _ in range(5_000)])
    qs = [0.1, 0.5, 0.99]
    assert hist.quantiles(qs) == [hist.quantile(q) for q in qs]
    assert LogHistogram().quantiles(qs) == [0.0, 0.0, 0.0]


def test_log_histogram_memory_constant_in_stream_length():
    hist = LogHistogram()
    nbins = len(hist._bins)
    rng = random.Random(2)
    for scale in (100, 10_000):
        for _ in range(scale):
            hist.observe(rng.expovariate(1.0))
        # The bin array never grows; the sketch holds no samples.
        assert len(hist._bins) == nbins
    assert hist.count == 10_100


# -- P2 -------------------------------------------------------------------
@pytest.mark.parametrize("seed", [1, 13, 99])
def test_p2_median_tracks_exact(seed):
    rng = random.Random(seed)
    data = [rng.gauss(10.0, 2.0) for _ in range(10_000)]
    sketch = P2Quantile(0.5)
    for x in data:
        sketch.observe(x)
    exact = exact_quantile(data, 0.5)
    assert abs(sketch.value() - exact) <= 0.05 * abs(exact)
    assert len(sketch._heights) == 5  # O(1): five markers forever


def test_p2_exact_below_five_samples():
    sketch = P2Quantile(0.5)
    for x in (3.0, 1.0, 2.0):
        sketch.observe(x)
    assert sketch.value() == 2.0


# -- reservoir ------------------------------------------------------------
def test_reservoir_exact_until_full_and_bounded_after():
    rng = random.Random(4)
    sample = ReservoirSample(random.Random(0), size=64)
    data = [rng.random() for _ in range(64)]
    for x in data:
        sample.observe(x)
    assert sample.quantile(0.5) == exact_quantile(data, 0.5)
    for _ in range(10_000):
        sample.observe(rng.random())
    assert len(sample._buf) == 64
    assert sample.count == 10_064


def test_reservoir_deterministic_given_seed():
    def fill(seed):
        sample = ReservoirSample(random.Random(seed), size=16)
        feed = random.Random(8)
        for _ in range(1_000):
            sample.observe(feed.random())
        return list(sample._buf)

    assert fill(5) == fill(5)
    assert fill(5) != fill(6)


# -- windowed tally vs brute-force oracle ---------------------------------
def oracle_window(samples, now, window, buckets):
    """Brute-force trailing-window stats with bucket granularity."""
    span = window / buckets
    current = int(now / span)
    oldest = current - buckets + 1
    live = [v for t, v in samples if oldest <= int(t / span) <= current]
    return live


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(0.0, 50.0, allow_nan=False),
            st.floats(-1e3, 1e3, allow_nan=False),
        ),
        min_size=1,
        max_size=200,
    )
)
def test_windowed_tally_rollup_matches_oracle(raw):
    samples = sorted(raw, key=lambda tv: tv[0])
    clock = Clock()
    tally = WindowedTally(clock, window=2.0, buckets=8)
    for t, v in samples:
        clock.now = t
        tally.observe(v)
    window = tally.rollup()
    live = oracle_window(samples, clock.now, 2.0, 8)
    assert window.count == len(live)
    if live:
        assert window.mean == pytest.approx(statistics.fmean(live))
        assert window.minimum == min(live)
        assert window.maximum == max(live)
        if len(live) > 1:
            assert window.variance == pytest.approx(
                statistics.variance(live), abs=1e-9
            )
    # Cumulative side is window-independent.
    values = [v for _, v in samples]
    assert tally.count == len(values)
    assert tally.mean == pytest.approx(statistics.fmean(values))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(0.0, 20.0, allow_nan=False),
            st.floats(1e-6, 1e2, allow_nan=False),
        ),
        min_size=1,
        max_size=300,
    ),
    st.integers(0, 2**32 - 1),
)
def test_bulk_fold_matches_scalar_path(raw, _seed):
    """observe_many/add_many ≡ a loop of observe/add (float tolerance)."""
    samples = sorted(raw, key=lambda tv: tv[0])
    times = [t for t, _ in samples]
    values = [v for _, v in samples]

    c1, c2 = Clock(), Clock()
    bulk_tally = WindowedTally(c1, window=1.0, buckets=4)
    bulk_tally.observe_many(times, values)
    scalar_tally = WindowedTally(c2, window=1.0, buckets=4)
    for t, v in samples:
        c2.now = t
        scalar_tally.observe(v)
    c1.now = c2.now
    a, b = bulk_tally.as_dict(), scalar_tally.as_dict()
    for key in a:
        assert a[key] == pytest.approx(b[key], rel=1e-9, abs=1e-9), key

    bulk_counter = WindowedCounter(c1, window=1.0, buckets=4)
    bulk_counter.add_many(times, values)
    scalar_counter = WindowedCounter(c2, window=1.0, buckets=4)
    for t, v in samples:
        c2.now = t
        scalar_counter.add(v)
    a, b = bulk_counter.as_dict(), scalar_counter.as_dict()
    for key in a:
        assert a[key] == pytest.approx(b[key], rel=1e-9, abs=1e-9), key


def test_windowed_counter_rate_and_window():
    clock = Clock()
    counter = WindowedCounter(clock, window=1.0, buckets=4)
    for i in range(10):
        clock.now = i * 0.1  # 0.0 .. 0.9: all inside one window
        counter.add(2.0)
    assert counter.count == 10
    assert counter.total == 20.0
    assert counter.window_count() == 10
    assert counter.rate() == 10.0
    clock.now = 5.0  # far future: the whole window is stale
    assert counter.window_count() == 0
    assert counter.rate() == 0.0
    assert counter.count == 10  # cumulative side unaffected


def test_windowed_tally_idle_gap_resets_slots():
    clock = Clock()
    tally = WindowedTally(clock, window=1.0, buckets=2)
    clock.now = 0.1
    tally.observe(100.0)
    clock.now = 10.0  # long idle: old bucket must not leak back in
    tally.observe(1.0)
    window = tally.rollup()
    assert window.count == 1
    assert window.mean == 1.0
    assert tally.count == 2


# -- QuantileSketch bundle ------------------------------------------------
def test_quantile_sketch_modes():
    rng = random.Random(21)
    data = [rng.expovariate(100.0) for _ in range(3_000)]
    hist = QuantileSketch()  # default: histogram backend
    p2 = QuantileSketch(mode="p2")
    res = QuantileSketch(mode="reservoir", rng=random.Random(0),
                         reservoir_size=256)
    for x in data:
        hist.observe(x)
        p2.observe(x)
        res.observe(x)
    exact = exact_quantile(data, 0.5)
    for sketch in (hist, p2, res):
        assert sketch.count == len(data)
        assert sketch.minimum == min(data)
        assert sketch.maximum == max(data)
        assert sketch.quantile(0.5) == pytest.approx(exact, rel=0.1)
        row = sketch.as_dict()
        assert set(row) >= {"count", "min", "max", "p50", "p99", "p999"}


def test_quantile_sketch_validation():
    with pytest.raises(ConfigError):
        QuantileSketch(mode="nope")
    with pytest.raises(ConfigError):
        QuantileSketch(mode="reservoir")  # rng required
    with pytest.raises(ConfigError):
        P2Quantile(1.5)
    with pytest.raises(ConfigError):
        ReservoirSample(random.Random(0), size=0)
    with pytest.raises(ConfigError):
        WindowedTally(Clock(), window=0.0)
    with pytest.raises(ConfigError):
        WindowedCounter(Clock(), window=1.0, buckets=0)
    with pytest.raises(ConfigError):
        LogHistogram(subbuckets=0)


def test_p2_mode_untracked_quantile_raises():
    sketch = QuantileSketch(mode="p2")
    sketch.observe(1.0)
    with pytest.raises(ConfigError):
        sketch.quantile(0.42)
