"""Latency-breakdown aggregation and rendering."""

from repro.obs import Tracer, latency_breakdown, render_breakdown
from repro.obs.summary import LAYER_ORDER
from repro.sim import Simulator


def _tracer_with_layers():
    sim = Simulator(seed=2)
    tracer = Tracer(sim)
    ctx = tracer.request(0, "read", "/f", 0, 1)

    def flow():
        dev = ctx.begin("device_service", cat="device", component="d0/hdd")
        yield sim.timeout(0.002)
        ctx.end(dev)
        net = ctx.begin("transfer", cat="network", component="nic:n0")
        yield sim.timeout(0.001)
        ctx.end(net)
        net2 = ctx.begin("transfer", cat="network", component="nic:n0")
        yield sim.timeout(0.003)
        ctx.end(net2)
        ctx.finish()

    sim.run_process(flow())
    return tracer


def test_breakdown_aggregates_per_layer_and_name():
    rows = latency_breakdown(_tracer_with_layers())
    by_key = {(r.layer, r.name): r for r in rows}
    transfer = by_key[("network", "transfer")]
    assert transfer.count == 2
    assert transfer.minimum == 0.001
    assert transfer.maximum == 0.003
    assert transfer.total == 0.004
    assert by_key[("device", "device_service")].count == 1
    assert by_key[("mpiio", "read")].count == 1


def test_breakdown_rows_follow_stack_order():
    rows = latency_breakdown(_tracer_with_layers())
    ranks = [LAYER_ORDER.index(r.layer) for r in rows]
    assert ranks == sorted(ranks)


def test_render_breakdown_is_a_table():
    text = render_breakdown(_tracer_with_layers())
    lines = text.splitlines()
    assert lines[0].startswith("layer")
    assert any("device_service" in line for line in lines)
    assert any("transfer" in line for line in lines)


def test_render_breakdown_empty():
    sim = Simulator(seed=0)
    assert render_breakdown(Tracer(sim)) == "no spans recorded"
