"""Tracer/TraceContext unit tests: nesting, no-op path, profiling."""

from repro.obs import NULL_CONTEXT, NULL_TRACER, Tracer
from repro.sim import Simulator


def _traced_request(sim, tracer):
    """One request descending two layers while sim time advances."""
    ctx = tracer.request(3, "read", "/f", 0, 4096)

    def flow():
        span = ctx.begin("pfs_io", cat="pfs", component="app")
        sub = ctx.under(span)
        yield sim.timeout(0.5)
        inner = sub.begin("service", cat="server", component="dserver0")
        yield sim.timeout(1.0)
        sub.end(inner, op="read")
        ctx.end(span)
        ctx.finish()

    sim.run_process(flow(), name="req")
    return ctx


def test_spans_nest_under_request_root():
    sim = Simulator(seed=1)
    tracer = Tracer(sim)
    _traced_request(sim, tracer)

    root, pfs, service = tracer.spans
    assert root.parent_id is None
    assert pfs.parent_id == root.span_id
    assert service.parent_id == pfs.span_id
    assert root.attrs["path"] == "/f"
    assert root.attrs["size"] == 4096
    assert all(s.tid == 3 for s in tracer.spans)
    assert all(s.trace_id == root.trace_id for s in tracer.spans)


def test_span_times_follow_sim_clock():
    sim = Simulator(seed=1)
    tracer = Tracer(sim)
    _traced_request(sim, tracer)

    root, pfs, service = tracer.spans
    assert root.start == 0.0
    assert root.end == 1.5
    assert service.start == 0.5
    assert service.duration == 1.0
    assert pfs.duration == 1.5


def test_finish_is_idempotent_and_closes_only_root():
    sim = Simulator(seed=1)
    tracer = Tracer(sim)
    ctx = tracer.request(0, "write", "/f", 0, 1)
    ctx.finish()
    end = tracer.spans[0].end
    ctx.finish()  # second call must not move the end time
    assert tracer.spans[0].end == end
    assert tracer.stats().open_spans == 0


def test_under_none_returns_same_context():
    sim = Simulator(seed=1)
    tracer = Tracer(sim)
    ctx = tracer.request(0, "read", "/f", 0, 1)
    assert ctx.under(None) is ctx


def test_events_are_instants_with_parent():
    sim = Simulator(seed=1)
    tracer = Tracer(sim)
    ctx = tracer.request(0, "read", "/f", 0, 1)
    ctx.event("oscache_hit", cat="oscache", component="dserver0", size=42)
    ctx.finish()
    (instant,) = tracer.instants
    assert instant.start == instant.end
    assert instant.parent_id == tracer.spans[0].span_id
    assert instant.attrs["size"] == 42


def test_null_tracer_records_nothing():
    ctx = NULL_TRACER.request(0, "read", "/f", 0, 1)
    assert ctx is NULL_CONTEXT
    assert not ctx
    assert ctx.begin("x", cat="c", component="app") is None
    ctx.end(None)
    ctx.event("x", cat="c", component="app")
    assert ctx.under(None) is NULL_CONTEXT
    ctx.finish()
    assert not NULL_TRACER.enabled


def test_self_profiling_counts_records():
    sim = Simulator(seed=1)
    tracer = Tracer(sim)
    _traced_request(sim, tracer)
    stats = tracer.stats()
    assert stats.spans == 3
    assert stats.events == 0
    assert stats.open_spans == 0
    assert stats.overhead_wall_seconds >= 0.0
    assert tracer.as_dict()["spans"] == 3


def test_clear_resets_ids():
    sim = Simulator(seed=1)
    tracer = Tracer(sim)
    _traced_request(sim, tracer)
    tracer.clear()
    assert len(tracer) == 0
    ctx = tracer.request(0, "read", "/f", 0, 1)
    ctx.finish()
    assert tracer.spans[0].span_id == 1
    assert tracer.spans[0].trace_id == 1
