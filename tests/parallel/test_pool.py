"""The fan-out pool: ordered merge, crash surfacing, determinism."""

from __future__ import annotations

import pytest

from repro.errors import ParallelError, WorkerCrashError
from repro.obs import MetricsRegistry
from repro.parallel import fanout, resolve_jobs

from .workers import crash_on_three, seeded_draws, square

TASKS = [(f"t{i}", i) for i in range(6)]


def test_serial_path_preserves_order():
    assert fanout(TASKS, square, jobs=1) == [i * i for i in range(6)]


def test_parallel_results_in_task_order():
    assert fanout(TASKS, square, jobs=3) == [i * i for i in range(6)]


def test_parallel_matches_serial_bit_for_bit():
    tasks = [(f"seed{s}", (s, 32)) for s in (7, 11, 13, 17)]
    serial = fanout(tasks, seeded_draws, jobs=1)
    parallel = fanout(tasks, seeded_draws, jobs=4)
    assert serial == parallel


def test_worker_crash_names_the_task():
    tasks = [(f"cfg-{i}", i) for i in range(5)]
    with pytest.raises(WorkerCrashError) as excinfo:
        fanout(tasks, crash_on_three, jobs=2)
    assert excinfo.value.task_id == "cfg-3"
    assert "cfg-3" in str(excinfo.value)
    assert "synthetic failure on payload 3" in excinfo.value.worker_traceback


def test_serial_crash_names_the_task_too():
    with pytest.raises(WorkerCrashError) as excinfo:
        fanout([("only", 3)], crash_on_three, jobs=1)
    assert excinfo.value.task_id == "only"


def test_pool_survives_a_crash():
    """A crash shuts the pool down cleanly; the next fanout works."""
    with pytest.raises(WorkerCrashError):
        fanout([("a", 3), ("b", 4)], crash_on_three, jobs=2)
    assert fanout([("a", 1), ("b", 2)], crash_on_three, jobs=2) == [10, 20]


def test_duplicate_task_id_rejected():
    with pytest.raises(ParallelError, match="duplicate"):
        fanout([("same", 1), ("same", 2)], square, jobs=1)


def test_resolve_jobs():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(5) == 5
    assert resolve_jobs(0) >= 1
    with pytest.raises(ParallelError):
        resolve_jobs(-2)


def test_progress_and_metrics():
    lines: list[str] = []
    metrics = MetricsRegistry()
    results = fanout(
        TASKS, square, jobs=2,
        progress=lines.append, metrics=metrics,
    )
    assert results == [i * i for i in range(6)]
    assert len(lines) == len(TASKS)
    assert all("done" in line for line in lines)
    assert metrics.get("parallel.tasks_done").count == len(TASKS)
    assert metrics.get("parallel.tasks_failed").count == 0


def test_failed_metric_increments():
    metrics = MetricsRegistry()
    with pytest.raises(WorkerCrashError):
        fanout([("x", 3)], crash_on_three, jobs=1, metrics=metrics)
    assert metrics.get("parallel.tasks_failed").count == 1
