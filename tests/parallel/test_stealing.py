"""The work-stealing drain: ordered merge, crash naming, drain stats."""

from __future__ import annotations

import pytest

from repro.errors import ParallelError, WorkerCrashError
from repro.obs import MetricsRegistry
from repro.parallel import StealStats, WorkerStats, steal_fanout

from .workers import (
    crash_on_three,
    die_hard_on_three,
    seeded_draws,
    square,
    uneven_sleep_square,
)

TASKS = [(f"t{i}", i) for i in range(6)]


def test_serial_drain_preserves_order():
    results, stats = steal_fanout(TASKS, square, jobs=1)
    assert results == [i * i for i in range(6)]
    assert stats.jobs == 1
    assert stats.workers[0].tasks == len(TASKS)
    assert stats.workers[0].task_ids == [t for t, _ in TASKS]


def test_parallel_drain_results_in_task_order():
    results, stats = steal_fanout(TASKS, square, jobs=2)
    assert results == [i * i for i in range(6)]
    assert stats.jobs == 2
    assert sum(w.tasks for w in stats.workers) == len(TASKS)
    drained = sorted(
        task_id for w in stats.workers for task_id in w.task_ids
    )
    assert drained == sorted(t for t, _ in TASKS)


def test_parallel_matches_serial_bit_for_bit():
    tasks = [(f"seed{s}", (s, 32)) for s in (7, 11, 13, 17)]
    serial, _ = steal_fanout(tasks, seeded_draws, jobs=1)
    parallel, _ = steal_fanout(tasks, seeded_draws, jobs=2)
    assert serial == parallel


def test_idle_worker_steals_the_queue_tail():
    """With one long unit and many short ones, the worker that is NOT
    stuck drains the remainder — the whole point of the shared queue."""
    tasks = [("slow", (9, 1.5))] + [
        (f"quick{i}", (i, 0.0)) for i in range(5)
    ]
    results, stats = steal_fanout(tasks, uneven_sleep_square, jobs=2)
    assert results == [81] + [i * i for i in range(5)]
    spread_min, spread_max = stats.task_spread
    assert spread_max >= 4  # somebody picked up the short tail
    assert spread_min >= 1


def test_soft_crash_names_the_unit():
    tasks = [(f"cfg-{i}", i) for i in range(5)]
    with pytest.raises(WorkerCrashError) as excinfo:
        steal_fanout(tasks, crash_on_three, jobs=2)
    assert excinfo.value.task_id == "cfg-3"
    assert "synthetic failure on payload 3" in excinfo.value.worker_traceback


def test_hard_death_names_the_inflight_unit():
    """A worker process that dies outright (os._exit, OOM-kill shape)
    is attributed to the unit it had announced."""
    tasks = [(f"cfg-{i}", i) for i in range(5)]
    with pytest.raises(WorkerCrashError) as excinfo:
        steal_fanout(tasks, die_hard_on_three, jobs=2)
    assert excinfo.value.task_id == "cfg-3"
    assert "exit code" in excinfo.value.worker_traceback


def test_serial_crash_names_the_unit_and_reports_progress():
    lines: list[str] = []
    with pytest.raises(WorkerCrashError) as excinfo:
        steal_fanout(
            [("only", 3)], crash_on_three, jobs=1, progress=lines.append
        )
    assert excinfo.value.task_id == "only"
    assert any("only" in line and "FAILED" in line for line in lines)


def test_duplicate_unit_id_rejected():
    with pytest.raises(ParallelError, match="duplicate"):
        steal_fanout([("same", 1), ("same", 2)], square, jobs=1)


def test_metrics_record_drain_and_task_seconds():
    metrics = MetricsRegistry()
    results, _ = steal_fanout(TASKS, square, jobs=1, metrics=metrics)
    assert results == [i * i for i in range(6)]
    assert metrics.get("parallel.tasks_done").count == len(TASKS)
    seconds = metrics.get("parallel.task_seconds")
    assert seconds.count == len(TASKS)
    busy = metrics.get("parallel.worker_busy_seconds")
    assert busy.count == 1  # one pseudo-worker observation
    drained = metrics.get("parallel.worker_tasks")
    assert drained.count == 1 and drained.mean == len(TASKS)


def test_stats_balance_and_spread():
    stats = StealStats(jobs=2, workers=[
        WorkerStats(worker_id=0, tasks=3, busy_seconds=3.0,
                    task_ids=["a", "b", "c"]),
        WorkerStats(worker_id=1, tasks=1, busy_seconds=1.0,
                    task_ids=["d"]),
    ])
    assert stats.balance == pytest.approx(1.5)
    assert stats.task_spread == (1, 3)
    assert stats.total_busy_seconds == pytest.approx(4.0)
    payload = stats.as_dict()
    assert payload["jobs"] == 2
    assert payload["workers"][0]["task_ids"] == ["a", "b", "c"]


def test_stats_balance_ignores_idle_workers():
    stats = StealStats(jobs=2, workers=[
        WorkerStats(worker_id=0, tasks=2, busy_seconds=2.0),
        WorkerStats(worker_id=1, tasks=0, busy_seconds=0.0),
    ])
    assert stats.balance == 1.0
