"""Property tests for the content-addressed sweep result store.

The digest contract: two configs collide iff they are *semantically*
equal — dict/kwarg ordering, default-value elision and float
formatting never matter; any value difference always does.
"""

import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.errors import ParallelError
from repro.parallel import ResultStore, code_fingerprint, config_digest
from repro.parallel.store import canonical

# -- digest stability (the "iff" forward direction) ------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-2**40, 2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=12,
)


@given(st.dictionaries(st.text(min_size=1, max_size=8), values, max_size=6))
@settings(max_examples=60, deadline=None)
def test_kwarg_order_never_matters(parts):
    forward = config_digest(**parts)
    backward = config_digest(
        **{k: parts[k] for k in reversed(list(parts))}
    )
    assert forward == backward


@given(st.dictionaries(st.text(min_size=1, max_size=6), values, max_size=5))
@settings(max_examples=60, deadline=None)
def test_dict_insertion_order_never_matters(mapping):
    reversed_mapping = {k: mapping[k] for k in reversed(list(mapping))}
    assert (config_digest(payload=mapping)
            == config_digest(payload=reversed_mapping))


@given(st.floats(allow_nan=False, allow_infinity=False))
@settings(max_examples=100, deadline=None)
def test_float_formatting_never_matters(x):
    """Equal floats collide however they were spelled (1e3 vs 1000.0
    vs float("1000")); unequal floats never do."""
    respelled = float(repr(x))
    assert config_digest(x=x) == config_digest(x=respelled)
    nearby = x + (abs(x) * 1e-9 or 1e-300)
    if nearby != x:
        assert config_digest(x=x) != config_digest(x=nearby)


@given(
    st.integers(1, 64), st.integers(1, 32),
    st.floats(0.01, 0.99), st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_value_differences_always_matter(d, c, frac, seed):
    spec = ClusterSpec(num_dservers=d, num_cservers=c,
                       cache_fraction=frac, seed=seed)
    base = config_digest(spec=spec)
    bumped = ClusterSpec(num_dservers=d + 1, num_cservers=c,
                         cache_fraction=frac, seed=seed)
    assert config_digest(spec=bumped) != base


def test_dataclass_default_elision():
    """Spelling out a default collides with omitting it."""
    implicit = ClusterSpec(num_dservers=8)
    explicit = ClusterSpec(num_dservers=8, seed=ClusterSpec().seed)
    assert config_digest(spec=implicit) == config_digest(spec=explicit)
    assert canonical(implicit) == canonical(explicit)
    assert "seed" not in canonical(implicit)


def test_non_canonicalisable_raises():
    with pytest.raises(ParallelError):
        config_digest(bad=object())


def test_set_and_bytes_canonicalisation():
    assert config_digest(s={3, 1, 2}) == config_digest(s={1, 2, 3})
    assert config_digest(b=b"\x01\x02") == config_digest(b=b"\x01\x02")
    assert config_digest(b=b"\x01") != config_digest(b=b"\x02")


# -- code fingerprint ------------------------------------------------------

def test_comment_edit_keeps_fingerprint(tmp_path):
    (tmp_path / "mod.py").write_text('"""Doc."""\nX = 1  # note\n')
    before = code_fingerprint(tmp_path)
    # code_fingerprint memoises per root; write a sibling tree instead
    # of mutating in place to model "same tree, re-fingerprinted".
    other = tmp_path / "copy"
    other.mkdir()
    (other / "mod.py").write_text('"""Changed docstring."""\nX = 1\n')
    assert code_fingerprint(other) == before


def test_semantic_edit_changes_fingerprint(tmp_path):
    (tmp_path / "mod.py").write_text("X = 1\n")
    before = code_fingerprint(tmp_path)
    other = tmp_path / "copy"
    other.mkdir()
    (other / "mod.py").write_text("X = 2\n")
    assert code_fingerprint(other) != before


def test_unparsable_module_still_fingerprints(tmp_path):
    (tmp_path / "mod.py").write_text("def broken(:\n")
    a = code_fingerprint(tmp_path)
    other = tmp_path / "copy"
    other.mkdir()
    (other / "mod.py").write_text("def broken(::\n")
    assert code_fingerprint(other) != a


# -- store round-trip ------------------------------------------------------

def test_get_returns_fresh_copies(tmp_path):
    with ResultStore(tmp_path) as store:
        digest = config_digest(k="fresh")
        store.put(digest, {"notes": []})
        first = store.get(digest)
        first["notes"].append("mutated by caller")
        assert store.get(digest) == {"notes": []}


def test_round_trip_across_process_boundary(tmp_path):
    """A value stored by another interpreter is readable here (and
    vice versa) — the cache is a real cross-process artefact."""
    digest = config_digest(kind="xproc", x=1.5)
    writer = (
        "import sys; sys.path.insert(0, sys.argv[1])\n"
        "from repro.parallel import ResultStore, config_digest\n"
        "with ResultStore(sys.argv[2]) as s:\n"
        "    s.put(config_digest(kind='xproc', x=1.5),"
        " {'series': [1, 2, 3]})\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", writer, "src", str(tmp_path)],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    with ResultStore(tmp_path) as store:
        assert store.get(digest) == {"series": [1, 2, 3]}
        assert store.hits == 1


def test_stats_gc_clear(tmp_path):
    with ResultStore(tmp_path, code_fp="old" * 10) as stale_store:
        stale_store.put(config_digest(k=1), "stale")
    with ResultStore(tmp_path) as store:
        store.put(config_digest(k=2), "current")
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["current_revision_entries"] == 1
        assert stats["stale_revision_entries"] == 1
        assert store.gc() == 1
        assert store.stats()["entries"] == 1
        assert store.get(config_digest(k=2)) == "current"
        store.clear()
        assert store.stats()["entries"] == 0


def test_store_version_namespaces_digests():
    from repro.parallel import store as store_module

    base = config_digest(x=1)
    bumped = store_module.STORE_VERSION + 1
    original = store_module.STORE_VERSION
    try:
        store_module.STORE_VERSION = bumped
        assert config_digest(x=1) != base
    finally:
        store_module.STORE_VERSION = original
