"""Sweep memoisation end to end: hits are bit-identical, invalidation
is semantic, and the ``repro sweep-cache`` CLI maintains the store."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments import harness, report
from repro.parallel import ResultStore, run_sweep_with_stats, unit_digest

SUBSET = ["fig9a", "table3"]
SCALE = 0.02


@pytest.fixture
def store(tmp_path):
    with ResultStore(tmp_path / "cache") as s:
        yield s


def test_warm_run_is_bit_identical_and_runs_nothing(store):
    cold, cold_stats = run_sweep_with_stats(
        SUBSET, SCALE, jobs=1, store=store
    )
    assert cold_stats is not None
    assert store.stores == len(SUBSET) and store.hits == 0

    warm, warm_stats = run_sweep_with_stats(
        SUBSET, SCALE, jobs=1, store=store
    )
    assert warm_stats is None  # nothing drained
    assert store.hits == len(SUBSET)
    assert list(warm) == list(cold) == sorted(SUBSET)
    for exp_id in SUBSET:
        assert (harness.fingerprint_digest(warm[exp_id])
                == harness.fingerprint_digest(cold[exp_id]))
        assert "sweep cache hit" in warm[exp_id].notes
        assert "sweep cache hit" not in cold[exp_id].notes


def test_hits_do_not_accumulate_notes(store):
    run_sweep_with_stats(SUBSET, SCALE, jobs=1, store=store)
    for _ in range(2):
        warm, _ = run_sweep_with_stats(SUBSET, SCALE, jobs=1, store=store)
    notes = warm["table3"].notes
    assert notes.count("sweep cache hit") == 1
    assert sum(1 for n in notes if n.startswith("wall time")) == 1


def test_default_scale_and_explicit_default_share_an_entry():
    exp = harness.get_experiment("table3")
    assert unit_digest("table3", None) == unit_digest(
        "table3", exp.default_scale
    )
    assert unit_digest("table3", 0.31) != unit_digest("table3", None)


def test_unknown_experiment_raises_before_any_run(store):
    with pytest.raises(ExperimentError):
        run_sweep_with_stats(["no_such_experiment"], SCALE, store=store)


def test_code_revision_isolates_entries(tmp_path):
    """A different code fingerprint never sees the old entries —
    semantic edits invalidate, comment edits (same fingerprint) hit."""
    with ResultStore(tmp_path, code_fp="rev-a") as store_a:
        digest = unit_digest("table3", SCALE)
        store_a.put(digest, ("payload", 0.1))
    with ResultStore(tmp_path, code_fp="rev-a") as same_rev:
        assert same_rev.get(digest) == ("payload", 0.1)
    with ResultStore(tmp_path, code_fp="rev-b") as other_rev:
        assert other_rev.get(digest) is None


def test_run_all_routes_store_through_sweep(store):
    cold = report.run_all(scale=SCALE, only=SUBSET, store=store)
    warm = report.run_all(scale=SCALE, only=SUBSET, store=store)
    assert store.hits == len(SUBSET)
    for exp_id in SUBSET:
        assert (harness.fingerprint_digest(warm[exp_id])
                == harness.fingerprint_digest(cold[exp_id]))


def test_serial_no_store_path_unchanged():
    """Without a store and at jobs=1 the legacy clock-injected serial
    loop still runs (stable output for the golden fixtures)."""
    ticks = iter(range(100))
    results = report.run_all(
        scale=SCALE, only=["table3"], clock=lambda: float(next(ticks))
    )
    assert results["table3"].notes[-1] == "wall time 1.0s"


# -- the maintenance CLI ---------------------------------------------------

def _seed_cache(tmp_path) -> str:
    cache_dir = str(tmp_path / "cache")
    with ResultStore(cache_dir) as store:
        store.put(unit_digest("table3", SCALE), ("v", 0.1))
    with ResultStore(cache_dir, code_fp="stale-rev") as store:
        store.put(unit_digest("fig9a", SCALE), ("v", 0.2))
    return cache_dir


def test_cli_stats(tmp_path, capsys):
    from repro.__main__ import main

    cache_dir = _seed_cache(tmp_path)
    assert main(["sweep-cache", "stats", "--cache-dir", cache_dir]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["entries"] == 2
    assert payload["current_revision_entries"] == 1
    assert payload["stale_revision_entries"] == 1
    assert payload["recovered_truncated_tail"] is False


def test_cli_gc_drops_stale_revisions(tmp_path, capsys):
    from repro.__main__ import main

    cache_dir = _seed_cache(tmp_path)
    assert main(["sweep-cache", "gc", "--cache-dir", cache_dir]) == 0
    assert "removed 1 stale entries" in capsys.readouterr().out
    with ResultStore(cache_dir) as store:
        assert store.get(unit_digest("table3", SCALE)) == ("v", 0.1)
        assert store.stats()["entries"] == 1


def test_cli_clear(tmp_path, capsys):
    from repro.__main__ import main

    cache_dir = _seed_cache(tmp_path)
    assert main(["sweep-cache", "clear", "--cache-dir", cache_dir]) == 0
    assert "cleared" in capsys.readouterr().out
    with ResultStore(cache_dir) as store:
        assert store.stats()["entries"] == 0


def test_cli_stats_on_missing_cache(tmp_path, capsys):
    from repro.__main__ import main

    missing = str(tmp_path / "nowhere")
    assert main(["sweep-cache", "stats", "--cache-dir", missing]) == 0
    assert "no sweep cache" in capsys.readouterr().out
    assert main(["sweep-cache", "gc", "--cache-dir", missing]) == 1


def test_experiments_cli_warm_run_reports_hits(tmp_path, capsys):
    from repro.experiments.__main__ import main

    cache_dir = str(tmp_path / "cache")
    out = str(tmp_path / "EXPERIMENTS.md")
    argv = [
        "--only", "table3", "--scale", str(SCALE), "--out", out,
        "--cache-dir", cache_dir,
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "sweep cache: 0 hits, 1 misses, 1 stored" in cold
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "sweep cache: 1 hits, 0 misses, 0 stored" in warm
    assert "table3: sweep cache hit" in warm


def test_experiments_cli_no_result_cache_opts_out(tmp_path, capsys):
    from repro.experiments.__main__ import main

    out = str(tmp_path / "EXPERIMENTS.md")
    assert main([
        "--only", "table3", "--scale", str(SCALE), "--out", out,
        "--cache-dir", str(tmp_path / "cache"), "--no-result-cache",
    ]) == 0
    assert "sweep cache:" not in capsys.readouterr().out
    assert not (tmp_path / "cache").exists()
