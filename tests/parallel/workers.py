"""Module-level workers for the pool tests.

The spawn start method pickles workers by qualified name, so anything
a test sends to ``fanout`` must live here, not in a test function.
"""

from __future__ import annotations


def square(payload: int) -> int:
    return payload * payload


def crash_on_three(payload: int) -> int:
    if payload == 3:
        raise ValueError(f"synthetic failure on payload {payload}")
    return payload * 10


def die_hard_on_three(payload: int) -> int:
    """A hard death: the process exits without a traceback message."""
    if payload == 3:
        import os

        os._exit(17)
    return payload * 10


def uneven_sleep_square(payload) -> int:
    """Heterogeneous unit cost: payload is (value, sleep_seconds)."""
    import time

    value, naptime = payload
    time.sleep(naptime)
    return value * value


def seeded_draws(payload) -> list[float]:
    """Per-task seeded RNG: results depend on the payload seed only."""
    from repro.sim.rng import RandomStreams

    seed, n = payload
    stream = RandomStreams(seed).stream("pool-test")
    return [stream.random() for _ in range(n)]
