"""Module-level workers for the pool tests.

The spawn start method pickles workers by qualified name, so anything
a test sends to ``fanout`` must live here, not in a test function.
"""

from __future__ import annotations


def square(payload: int) -> int:
    return payload * payload


def crash_on_three(payload: int) -> int:
    if payload == 3:
        raise ValueError(f"synthetic failure on payload {payload}")
    return payload * 10


def seeded_draws(payload) -> list[float]:
    """Per-task seeded RNG: results depend on the payload seed only."""
    from repro.sim.rng import RandomStreams

    seed, n = payload
    stream = RandomStreams(seed).stream("pool-test")
    return [stream.random() for _ in range(n)]
