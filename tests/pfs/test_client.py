"""Integration tests: client -> network -> server -> device."""

import pytest

from repro.errors import PFSError

from repro.devices import HDD, HDDSpec, SSD, SSDSpec
from repro.network import Fabric, NetworkSpec
from repro.pfs import PFS, FileServer, PFSClient, PFSSpec
from repro.sim import Simulator
from repro.sim.resources import PRIORITY_LOW
from repro.units import GiB, KiB, MiB


def build(num_servers=4, device="hdd", stripe=64 * KiB, seed=1):
    sim = Simulator(seed=seed)
    fabric = Fabric(sim, NetworkSpec())

    def make_device(i):
        if device == "hdd":
            return HDD(HDDSpec(capacity_bytes=GiB, rotation_mode="expected"))
        return SSD(SSDSpec(capacity_bytes=GiB))

    servers = [
        FileServer(sim, f"s{i}", make_device(i)) for i in range(num_servers)
    ]
    pfs = PFS(sim, "pfs", servers, PFSSpec(stripe_size=stripe))
    client = PFSClient(sim, pfs, fabric, "client0")
    return sim, pfs, client


def test_write_then_read_returns_same_stamp():
    sim, pfs, client = build()
    handle = pfs.create("/f", 16 * MiB)

    def body():
        wres = yield from client.write(handle, 0, 256 * KiB)
        rres = yield from client.read(handle, 0, 256 * KiB)
        return wres, rres

    wres, rres = sim.run_process(body())
    assert wres.stamp is not None
    assert rres.segments == [(0, 256 * KiB, wres.stamp)]


def test_read_of_unwritten_data_reports_holes():
    sim, pfs, client = build()
    handle = pfs.create("/f", MiB)

    def body():
        return (yield from client.read(handle, 0, KiB))

    res = sim.run_process(body())
    assert res.segments == [(0, KiB, None)]


def test_request_spans_expected_servers():
    sim, pfs, client = build(num_servers=4)
    handle = pfs.create("/f", 16 * MiB)

    def body():
        return (yield from client.write(handle, 0, 3 * 64 * KiB))

    res = sim.run_process(body())
    assert res.servers_touched == 3


def test_write_updates_file_size():
    sim, pfs, client = build()
    handle = pfs.create("/f", 16 * MiB)

    def body():
        yield from client.write(handle, MiB, KiB)

    sim.run_process(body())
    assert handle.size == MiB + KiB


def test_large_request_faster_striped_than_single_server():
    """Parallelism: the same bytes on more servers finish sooner."""

    def run(num_servers):
        sim, pfs, client = build(num_servers=num_servers)
        handle = pfs.create("/f", 64 * MiB)

        def body():
            res = yield from client.read(handle, 0, 16 * MiB)
            return res.elapsed

        return sim.run_process(body())

    assert run(8) < run(1) / 2


def test_small_random_reads_faster_on_ssd_pfs():
    """Device asymmetry survives the full PFS stack."""

    def run(device):
        sim, pfs, client = build(num_servers=4, device=device, seed=3)
        handle = pfs.create("/f", 256 * MiB)
        rng = sim.rng.stream("offsets")
        offsets = [
            rng.randrange(0, 255 * MiB // (16 * KiB)) * 16 * KiB
            for _ in range(50)
        ]

        def body():
            start = sim.now
            for off in offsets:
                yield from client.read(handle, off, 16 * KiB)
            return sim.now - start

        return sim.run_process(body())

    assert run("hdd") > 5 * run("ssd")


def test_concurrent_clients_contend_on_servers():
    sim, pfs, client_a = build(num_servers=1)
    fabric = client_a.fabric
    client_b = PFSClient(sim, pfs, fabric, "client1")
    handle = pfs.create("/f", 64 * MiB)

    def one_client(client, offset):
        res = yield from client.write(handle, offset, 8 * MiB)
        return res.elapsed

    def solo():
        return (yield from client_a.write(handle, 0, 8 * MiB))

    solo_elapsed = sim.run_process(solo()).elapsed

    def both():
        procs = [
            sim.spawn(one_client(client_a, 16 * MiB)),
            sim.spawn(one_client(client_b, 32 * MiB)),
        ]
        return (yield sim.all_of(procs))

    elapsed = sim.run_process(both())
    # With one server, at least one of the two must take ~2x solo time.
    assert max(elapsed) > 1.5 * solo_elapsed


def test_low_priority_request_yields_to_normal():
    sim, pfs, client = build(num_servers=1)
    handle = pfs.create("/f", 64 * MiB)
    finish_order = []

    def low():
        # Two back-to-back low-priority requests...
        for _ in range(2):
            yield from client.read(handle, 0, 4 * MiB, priority=PRIORITY_LOW)
        finish_order.append("low")

    def normal():
        yield sim.timeout(1e-4)  # arrive while low's first request runs
        yield from client.read(handle, 8 * MiB, 4 * MiB)
        finish_order.append("normal")

    def parent():
        yield sim.all_of([sim.spawn(low()), sim.spawn(normal())])

    sim.run_process(parent())
    assert finish_order == ["normal", "low"]


def test_zero_size_request_rejected():
    sim, pfs, client = build()
    handle = pfs.create("/f", MiB)

    def body():
        yield from client.read(handle, 0, 0)

    sim.spawn(body())
    with pytest.raises(PFSError):
        sim.run()


def test_client_stats():
    sim, pfs, client = build()
    handle = pfs.create("/f", MiB)

    def body():
        yield from client.write(handle, 0, KiB)
        yield from client.read(handle, 0, KiB)

    sim.run_process(body())
    assert client.requests_issued == 2
    assert client.bytes_moved == 2 * KiB
