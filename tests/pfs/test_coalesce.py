"""Coalescing byte-oracle: same bytes on every device, fewer messages.

Two layers of proof for ``coalesce_subrequests``:

- a hypothesis property over the pure layout math — the coalesced plan
  covers exactly the same (server, local byte) set as the fragment
  plan, with no overlaps and strictly fewer-or-equal messages;
- an end-to-end simulation — a write/read campaign with coalescing on
  and off returns identical content (stamps via ``pfs.content``) and
  identical per-server byte totals, while putting fewer transfers on
  the network.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import SSD, SSDSpec
from repro.network import Fabric, NetworkSpec
from repro.pfs import PFS, FileServer, PFSClient, PFSSpec
from repro.pfs.layout import coalesce_subrequests, split_request
from repro.sim import Simulator
from repro.units import GiB, KiB, MiB


def _covered(subs):
    """The exact (server, local byte) set a plan touches."""
    bytes_touched = set()
    for sub in subs:
        for b in range(sub.local_offset, sub.local_offset + sub.length):
            bytes_touched.add((sub.server, b))
    return bytes_touched


@settings(max_examples=200, deadline=None)
@given(
    offset=st.integers(min_value=0, max_value=1 << 20),
    size=st.integers(min_value=1, max_value=1 << 20),
    stripe=st.sampled_from([512, 4096, 65536]),
    servers=st.integers(min_value=1, max_value=9),
)
def test_coalesced_plan_covers_identical_bytes(offset, size, stripe, servers):
    subs = split_request(offset, size, stripe, servers)
    merged = coalesce_subrequests(subs)
    # Same bytes on the same servers...
    assert _covered(merged) == _covered(subs)
    # ...with no double-coverage (total length is conserved exactly)...
    assert sum(s.length for s in merged) == sum(s.length for s in subs)
    assert sum(s.length for s in merged) == size
    # ...in fewer-or-equal wire messages, never more than one run per
    # server beyond the fragment count floor.
    assert len(merged) <= len(subs)
    assert len(merged) >= len({s.server for s in subs})


@settings(max_examples=100, deadline=None)
@given(
    offset=st.integers(min_value=0, max_value=1 << 20),
    size=st.integers(min_value=1, max_value=1 << 20),
    servers=st.integers(min_value=1, max_value=9),
)
def test_coalescing_is_idempotent(offset, size, servers):
    merged = coalesce_subrequests(split_request(offset, size, 4096, servers))
    assert coalesce_subrequests(merged) == merged


def build(coalesce: bool, num_servers=4, stripe=64 * KiB, seed=7):
    sim = Simulator(seed=seed)
    fabric = Fabric(sim, NetworkSpec())
    servers = [
        FileServer(sim, f"s{i}", SSD(SSDSpec(capacity_bytes=GiB)))
        for i in range(num_servers)
    ]
    pfs = PFS(sim, "pfs", servers, PFSSpec(stripe_size=stripe))
    client = PFSClient(sim, pfs, fabric, "client0", coalesce=coalesce)
    return sim, fabric, pfs, client


def _campaign(coalesce: bool):
    """Write then read a multi-round request pattern; return evidence."""
    sim, fabric, pfs, client = build(coalesce)
    handle = pfs.create("/f", 64 * MiB)

    def body():
        stamps = []
        # 1 MiB over 4 servers x 64 KiB stripes = 16 fragments, 4 per
        # server — the shape coalescing collapses; plus a small request
        # below the threshold, and an unaligned spanning one.
        for offset, size in [
            (0, MiB), (MiB, 32 * KiB), (3 * MiB + 5 * KiB, MiB),
        ]:
            res = yield from client.write(handle, offset, size)
            stamps.append(res.stamp)
        reads = []
        for offset, size in [
            (0, MiB), (MiB, 32 * KiB), (3 * MiB + 5 * KiB, MiB),
            (512 * KiB, MiB),  # crosses written/unwritten regions
        ]:
            res = yield from client.read(handle, offset, size)
            reads.append(res.segments)
        return stamps, reads

    stamps, reads = sim.run_process(body())
    # Stamps come from a process-global mint, so their absolute values
    # depend on how many writes ran before this campaign; normalise to
    # write order (None = hole) so campaigns compare structurally.
    order = {stamp: i for i, stamp in enumerate(stamps)}
    reads = [
        [(start, end, order.get(stamp) if stamp is not None else None)
         for start, end, stamp in segments]
        for segments in reads
    ]
    served = [s.device.total_bytes for s in pfs.servers]
    return {
        "stamps": [order[stamp] for stamp in stamps],
        "reads": reads,
        "per_server_bytes": served,
        "transfers": fabric.total_transfers,
        "network_bytes": fabric.total_bytes,
        "issued": client.subrequests_issued,
        "merged": client.subrequests_coalesced,
    }


def test_end_to_end_bytes_identical_messages_fewer():
    off = _campaign(coalesce=False)
    on = _campaign(coalesce=True)
    # Byte oracle: identical content stamps and segments either way.
    assert on["stamps"] == off["stamps"]
    assert on["reads"] == off["reads"]
    # Identical bytes through every device.
    assert on["per_server_bytes"] == off["per_server_bytes"]
    # Fewer wire messages, and the merge counter accounts for them.
    assert off["merged"] == 0
    assert on["merged"] > 0
    assert on["issued"] == off["issued"] - on["merged"]
    assert on["transfers"] < off["transfers"]
    # Payload bytes shrink only by the per-message headers saved.
    assert on["network_bytes"] < off["network_bytes"]


def test_small_requests_bypass_coalescing():
    """Requests touching each server at most once are left untouched."""
    sim, fabric, pfs, client = build(coalesce=True)
    handle = pfs.create("/f", 16 * MiB)

    def body():
        return (yield from client.write(handle, 0, 128 * KiB))

    sim.run_process(body())
    assert client.subrequests_coalesced == 0
    assert client.subrequests_issued == 2  # 128 KiB / 64 KiB stripes
