"""Tests for write-stamp content tracking."""

from repro.pfs.content import FileContent, next_stamp


def test_stamps_are_unique_and_increasing():
    a, b, c = next_stamp(), next_stamp(), next_stamp()
    assert a < b < c


def test_read_after_write_sees_stamp():
    content = FileContent()
    stamp = next_stamp()
    content.write(100, 50, stamp)
    assert content.read(100, 50) == [(100, 150, stamp)]


def test_unwritten_ranges_are_none():
    content = FileContent()
    stamp = next_stamp()
    content.write(10, 10, stamp)
    assert content.read(0, 30) == [
        (0, 10, None),
        (10, 20, stamp),
        (20, 30, None),
    ]


def test_overwrite_replaces_stamp():
    content = FileContent()
    s1, s2 = next_stamp(), next_stamp()
    content.write(0, 100, s1)
    content.write(25, 50, s2)
    assert content.read(0, 100) == [
        (0, 25, s1),
        (25, 75, s2),
        (75, 100, s1),
    ]


def test_zero_size_write_is_noop():
    content = FileContent()
    content.write(0, 0, next_stamp())
    assert content.written_bytes() == 0


def test_copy_range_preserves_stamps():
    src = FileContent()
    dst = FileContent()
    s1, s2 = next_stamp(), next_stamp()
    src.write(0, 50, s1)
    src.write(50, 50, s2)
    dst.copy_range_from(src, src_offset=25, dst_offset=1000, size=50)
    assert dst.read(1000, 50) == [(1000, 1025, s1), (1025, 1050, s2)]


def test_copy_range_with_holes_clears_destination():
    src = FileContent()
    dst = FileContent()
    stale = next_stamp()
    dst.write(1000, 100, stale)
    fresh = next_stamp()
    src.write(20, 10, fresh)
    dst.copy_range_from(src, src_offset=0, dst_offset=1000, size=100)
    assert dst.read(1000, 100) == [
        (1000, 1020, None),
        (1020, 1030, fresh),
        (1030, 1100, None),
    ]
