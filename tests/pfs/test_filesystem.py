"""Tests for the PFS namespace and space allocator."""

import pytest

from repro.devices import HDD, HDDSpec
from repro.errors import ConfigError, FileExists, FileNotFound, PFSError
from repro.pfs import PFS, FileServer, PFSSpec
from repro.sim import Simulator
from repro.units import GiB, KiB, MiB


def make_pfs(num_servers=4, capacity=GiB, stripe=64 * KiB):
    sim = Simulator(seed=1)
    servers = [
        FileServer(
            sim,
            f"ds{i}",
            HDD(HDDSpec(capacity_bytes=capacity, rotation_mode="expected")),
        )
        for i in range(num_servers)
    ]
    return sim, PFS(sim, "opfs", servers, PFSSpec(stripe_size=stripe))


def test_create_and_open():
    _, pfs = make_pfs()
    created = pfs.create("/data/a.dat", "16MB")
    assert pfs.open("/data/a.dat") is created
    assert pfs.exists("/data/a.dat")
    assert pfs.files() == ["/data/a.dat"]


def test_create_duplicate_rejected():
    _, pfs = make_pfs()
    pfs.create("/f", MiB)
    with pytest.raises(FileExists):
        pfs.create("/f", MiB)


def test_open_missing_rejected():
    _, pfs = make_pfs()
    with pytest.raises(FileNotFound):
        pfs.open("/nope")


def test_open_or_create():
    _, pfs = make_pfs()
    a = pfs.open_or_create("/f", MiB)
    b = pfs.open_or_create("/f", MiB)
    assert a is b


def test_delete():
    _, pfs = make_pfs()
    pfs.create("/f", MiB)
    pfs.delete("/f")
    assert not pfs.exists("/f")
    with pytest.raises(FileNotFound):
        pfs.delete("/f")


def test_reservation_covers_hint():
    _, pfs = make_pfs(num_servers=4, stripe=64 * KiB)
    handle = pfs.create("/f", 16 * MiB)
    # 256 stripes over 4 servers -> 64 stripes/server.
    assert handle.reserved_local == 64 * 64 * KiB
    assert handle.bases == [0, 0, 0, 0]


def test_second_file_placed_after_first():
    _, pfs = make_pfs()
    first = pfs.create("/a", 16 * MiB)
    second = pfs.create("/b", 16 * MiB)
    assert all(
        b2 == b1 + first.reserved_local
        for b1, b2 in zip(first.bases, second.bases)
    )


def test_local_address_bounds_checked():
    _, pfs = make_pfs()
    handle = pfs.create("/f", MiB)
    with pytest.raises(PFSError, match="size hint"):
        handle.local_address(0, handle.reserved_local, 1)


def test_out_of_space_rejected():
    _, pfs = make_pfs(capacity=MiB)
    with pytest.raises(PFSError, match="out of space"):
        pfs.create("/huge", 100 * MiB)


def test_bad_size_hint_rejected():
    _, pfs = make_pfs()
    with pytest.raises(PFSError):
        pfs.create("/f", 0)


def test_pfs_needs_servers():
    sim = Simulator()
    with pytest.raises(ConfigError):
        PFS(sim, "empty", [])


def test_bad_stripe_rejected():
    with pytest.raises(ConfigError):
        PFSSpec(stripe_size=0)
