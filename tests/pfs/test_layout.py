"""Tests for striping layout math, including Table II / Fig. 4 cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PFSError
from repro.pfs import (
    involved_servers,
    involved_servers_paper,
    max_subrequest_paper,
    max_subrequest_size,
    split_request,
)

STR = 64 * 1024  # PVFS2 default stripe


def test_single_stripe_request_single_server():
    subs = split_request(offset=0, size=1000, stripe=STR, servers=8)
    assert len(subs) == 1
    assert subs[0].server == 0
    assert subs[0].local_offset == 0
    assert subs[0].length == 1000


def test_request_spanning_two_stripes():
    subs = split_request(offset=STR - 100, size=200, stripe=STR, servers=8)
    assert [(s.server, s.length) for s in subs] == [(0, 100), (1, 100)]
    assert subs[1].local_offset == 0
    assert subs[1].file_offset == STR


def test_round_robin_wraps_around():
    subs = split_request(offset=0, size=3 * STR, stripe=STR, servers=2)
    assert [(s.server, s.local_offset) for s in subs] == [
        (0, 0), (1, 0), (0, STR)
    ]


def test_sub_request_lengths_sum_to_request():
    subs = split_request(offset=12345, size=10 * STR + 777, stripe=STR, servers=4)
    assert sum(s.length for s in subs) == 10 * STR + 777


def test_file_offsets_are_contiguous():
    subs = split_request(offset=500, size=5 * STR, stripe=STR, servers=3)
    pos = 500
    for sub in subs:
        assert sub.file_offset == pos
        pos += sub.length


def test_involved_servers_basic():
    assert involved_servers(0, 1000, STR, 8) == 1
    assert involved_servers(0, 2 * STR, STR, 8) == 2
    assert involved_servers(0, 100 * STR, STR, 8) == 8


def test_eq6_counts_extra_server_on_aligned_end():
    # Paper's E = floor((f+r)/str) includes one phantom stripe when the
    # request ends exactly on a boundary.
    assert involved_servers(0, 2 * STR, STR, 8) == 2
    assert involved_servers_paper(0, 2 * STR, STR, 8) == 3
    # Unaligned end: both agree.
    assert involved_servers(0, 2 * STR - 1, STR, 8) == 2
    assert involved_servers_paper(0, 2 * STR - 1, STR, 8) == 2


def test_table2_case1_delta_zero():
    # Request inside one stripe: s_m = r.
    assert max_subrequest_paper(100, 1000, STR, 8) == 1000


def test_table2_case3_delta_one():
    # Spans two stripes: s_m = max(b, e).
    assert max_subrequest_paper(STR - 100, 300, STR, 8) == 200


def test_table2_case4_middle_full_stripe():
    # b + full stripe + e across three servers: s_m = str.
    assert max_subrequest_paper(STR // 2, 2 * STR, STR, 8) == STR


def test_table2_case2_wraparound_same_server():
    # delta == M: begin and end fragments co-located on one server.
    m = 2
    offset = 0
    size = 2 * STR + STR // 2
    assert max_subrequest_paper(offset, size, STR, m) == STR + STR // 2
    assert max_subrequest_size(offset, size, STR, m) == STR + STR // 2


def test_bad_parameters_rejected():
    with pytest.raises(PFSError):
        split_request(0, 0, STR, 8)
    with pytest.raises(PFSError):
        split_request(-1, 10, STR, 8)
    with pytest.raises(PFSError):
        split_request(0, 10, 0, 8)
    with pytest.raises(PFSError):
        split_request(0, 10, STR, 0)
    with pytest.raises(PFSError):
        max_subrequest_paper(0, 0, STR, 8)


# -- property tests -----------------------------------------------------

_params = {
    "offset": st.integers(min_value=0, max_value=50_000),
    "size": st.integers(min_value=1, max_value=80_000),
    "stripe": st.sampled_from([64, 100, 512, 1024, 4096]),
    "servers": st.integers(min_value=1, max_value=12),
}


@given(**_params)
@settings(max_examples=400, deadline=None)
def test_split_tiles_request_exactly(offset, size, stripe, servers):
    subs = split_request(offset, size, stripe, servers)
    assert sum(s.length for s in subs) == size
    pos = offset
    for sub in subs:
        assert sub.file_offset == pos
        assert 0 <= sub.server < servers
        # Each sub-request lives within one stripe (unless M == 1 merge).
        if servers > 1:
            assert sub.length <= stripe
        pos += sub.length
    assert pos == offset + size


@given(**_params)
@settings(max_examples=400, deadline=None)
def test_split_local_offsets_consistent(offset, size, stripe, servers):
    """Local addresses must follow the k//M layout and never overlap."""
    subs = split_request(offset, size, stripe, servers)
    if servers == 1:
        # Single server: sub-requests merge into one contiguous run
        # whose local address equals the file offset.
        assert len(subs) == 1
        assert subs[0].local_offset == offset
        return
    ranges: dict[int, list[tuple[int, int]]] = {}
    for sub in subs:
        k = sub.file_offset // stripe
        assert sub.server == k % servers
        expected_local = (k // servers) * stripe + (sub.file_offset % stripe)
        assert sub.local_offset == expected_local
        ranges.setdefault(sub.server, []).append(
            (sub.local_offset, sub.local_offset + sub.length)
        )
    for spans in ranges.values():
        spans.sort()
        for (_, end1), (start2, _) in zip(spans, spans[1:]):
            assert end1 <= start2  # no overlap on any server


@given(**_params)
@settings(max_examples=400, deadline=None)
def test_table2_matches_brute_force(offset, size, stripe, servers):
    """Table II equals the real max sub-request size — for M >= 2.

    Exhaustive sweeps show the closed form is exact for every M >= 2
    but overestimates for the degenerate M == 1 PFS: there the
    ``ceil(delta/M) * str`` term assumes some *other* server holds
    only full stripes, which does not exist.  It never underestimates,
    so cost-model decisions stay conservative.
    """
    expected = max_subrequest_size(offset, size, stripe, servers)
    got = max_subrequest_paper(offset, size, stripe, servers)
    if servers >= 2:
        assert got == expected
    else:
        assert expected == size  # one server holds everything
        assert expected <= got < expected + stripe


@given(**_params)
@settings(max_examples=300, deadline=None)
def test_involved_servers_matches_split(offset, size, stripe, servers):
    subs = split_request(offset, size, stripe, servers)
    assert involved_servers(offset, size, stripe, servers) == len(
        {s.server for s in subs}
    )


@given(**_params)
@settings(max_examples=300, deadline=None)
def test_paper_server_count_off_by_at_most_one(offset, size, stripe, servers):
    actual = involved_servers(offset, size, stripe, servers)
    paper = involved_servers_paper(offset, size, stripe, servers)
    assert paper in (actual, min(actual + 1, servers))
    if (offset + size) % stripe != 0:
        assert paper == actual
