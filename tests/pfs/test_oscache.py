"""Unit tests for the server OS cache model (readahead/write-behind)."""

import pytest

from repro.devices import HDD, HDDSpec
from repro.errors import ConfigError
from repro.pfs import FileServer
from repro.pfs.oscache import OSCacheSpec
from repro.sim import Simulator
from repro.units import GiB, KiB, MiB


def make_server(sim, **cache_overrides):
    spec = OSCacheSpec(**cache_overrides) if cache_overrides else None
    return FileServer(
        sim,
        "srv",
        HDD(HDDSpec(capacity_bytes=GiB, rotation_mode="expected")),
        software_overhead=0.0,
        os_cache_spec=spec,
    )


def serve_all(sim, server, requests):
    """Run requests sequentially; returns per-request foreground times."""

    def body():
        times = []
        for op, offset, size in requests:
            elapsed = yield from server.serve(op, offset, size)
            times.append(elapsed)
        return times

    return sim.run_process(body())


# -- reads -----------------------------------------------------------------

def test_sequential_reads_hit_after_rampup():
    sim = Simulator(seed=1)
    server = make_server(sim)
    requests = [("read", i * 16 * KiB, 16 * KiB) for i in range(32)]
    times = serve_all(sim, server, requests)
    oc = server.os_cache
    assert oc.read_hits > 16  # most requests hit the window
    assert oc.read_refills < 8  # a handful of ramping refills
    # Hits are orders of magnitude cheaper than device reads.
    assert min(times) < 1e-4
    assert max(times) > 1e-3


def test_random_reads_never_hit():
    sim = Simulator(seed=2)
    server = make_server(sim)
    rng = sim.rng.stream("t")
    requests = [
        ("read", rng.randrange(0, 2**14) * 32 * KiB, 16 * KiB)
        for _ in range(50)
    ]
    times = serve_all(sim, server, requests)
    assert server.os_cache.read_hits == 0
    # Every random read pays positioning (~ms).
    assert min(times) > 1e-3


def test_strided_reads_do_not_count_as_sequential():
    """Linux ondemand semantics: jumps past the window reset it."""
    sim = Simulator(seed=3)
    server = make_server(sim)
    stride = 24 * KiB  # 8KB read + 16KB hole > window end
    requests = [("read", i * stride, 8 * KiB) for i in range(40)]
    serve_all(sim, server, requests)
    oc = server.os_cache
    assert oc.read_hits < 10
    assert oc.read_refills < 10  # mostly cold resets, not stream refills


def test_in_window_forward_jump_hits():
    """Pages inside a readahead window hit even if some were skipped."""
    sim = Simulator(seed=4)
    server = make_server(sim)
    # Ramp a stream up, then jump forward within the buffered window.
    requests = [("read", i * 16 * KiB, 16 * KiB) for i in range(8)]
    serve_all(sim, server, requests)
    oc = server.os_cache
    hits_before = oc.read_hits
    window_start = oc._streams[-1].window_start
    buffered = oc._streams[-1].buffered_until
    probe = window_start + (buffered - window_start) // 2

    def body():
        yield from server.serve("read", probe, 4 * KiB)

    sim.run_process(body())
    assert oc.read_hits == hits_before + 1


def test_large_reads_bypass_windows():
    sim = Simulator(seed=5)
    server = make_server(sim)
    serve_all(sim, server, [("read", 0, 4 * MiB)])
    oc = server.os_cache
    assert oc.read_hits == 0
    assert len(oc._streams) == 0


def test_prefetch_extends_stream_asynchronously():
    sim = Simulator(seed=6)
    server = make_server(sim)
    requests = [("read", i * 16 * KiB, 16 * KiB) for i in range(64)]
    serve_all(sim, server, requests)
    assert server.os_cache.prefetches > 0


# -- writes ----------------------------------------------------------------

def test_writes_absorb_quickly_until_budget():
    sim = Simulator(seed=7)
    server = make_server(sim, dirty_high=256 * KiB, dirty_low=128 * KiB)
    requests = [("write", i * 16 * KiB, 16 * KiB) for i in range(8)]
    times = serve_all(sim, server, requests)
    # Under the budget: absorbed at software speed.
    assert all(t < 1e-3 for t in times)
    assert server.os_cache.writes_absorbed == 8


def test_write_backpressure_engages_at_high_watermark():
    sim = Simulator(seed=8)
    server = make_server(sim, dirty_high=128 * KiB, dirty_low=64 * KiB)
    rng = sim.rng.stream("t")
    requests = [
        ("write", rng.randrange(0, 2**14) * 32 * KiB, 16 * KiB)
        for _ in range(40)
    ]
    times = serve_all(sim, server, requests)
    assert server.os_cache.writes_throttled > 0
    # Sustained random writes become device-bound (milliseconds).
    assert sum(times) > 40 * 1e-3


def test_drain_coalesces_adjacent_writes():
    sim = Simulator(seed=9)
    server = make_server(sim)

    def body():
        for i in range(16):
            yield from server.serve("write", i * 16 * KiB, 16 * KiB)
        yield from server.os_cache.flush()

    sim.run_process(body())
    oc = server.os_cache
    assert oc.dirty_bytes == 0
    assert oc.drained_bytes == 16 * 16 * KiB
    # 256KB of contiguous dirty data drains in few chunks, not 16.
    assert server.device.total_requests <= 4


def test_read_of_dirty_data_hits_page_cache():
    sim = Simulator(seed=10)
    server = make_server(sim)

    def body():
        # Two scattered dirty runs: the drainer picks the one nearest
        # the head (100MiB) first, so the 200MiB run is still dirty
        # when the read arrives and must be served from memory.
        yield from server.serve("write", 100 * MiB, 16 * KiB)
        yield from server.serve("write", 200 * MiB, 16 * KiB)
        elapsed = yield from server.serve("read", 200 * MiB, 16 * KiB)
        return elapsed

    elapsed = sim.run_process(body())
    assert elapsed < 1e-4
    assert server.os_cache.read_hits == 1


def test_flush_waits_for_clean():
    sim = Simulator(seed=11)
    server = make_server(sim)

    def body():
        rng = sim.rng.stream("t")
        for _ in range(10):
            yield from server.serve(
                "write", rng.randrange(0, 2**13) * 64 * KiB, 16 * KiB
            )
        yield from server.os_cache.flush()

    sim.run_process(body())
    assert server.os_cache.dirty_bytes == 0


def test_spec_validation():
    with pytest.raises(ConfigError):
        OSCacheSpec(dirty_low=100, dirty_high=50)
    with pytest.raises(ConfigError):
        OSCacheSpec(readahead_max=-1)
    with pytest.raises(ConfigError):
        OSCacheSpec(drain_chunk=0)


def test_ssd_servers_have_no_os_cache_by_default():
    from repro.devices import SSD

    sim = Simulator(seed=12)
    server = FileServer(sim, "css", SSD())
    assert server.os_cache is None
    hdd_server = make_server(sim)
    assert hdd_server.os_cache is not None
