"""Property tests: OS-cache accounting under arbitrary request mixes."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.devices import HDD, HDDSpec
from repro.pfs import FileServer
from repro.pfs.oscache import OSCacheSpec
from repro.sim import Simulator
from repro.units import GiB, KiB

BLOCK = 16 * KiB

requests = st.lists(
    st.tuples(
        st.sampled_from(["read", "write"]),
        st.integers(0, 512),          # block offset
        st.integers(1, 8),            # blocks
    ),
    min_size=1,
    max_size=60,
)


@given(ops=requests, dirty_high_blocks=st.sampled_from([2, 8, 32]))
@settings(
    max_examples=60, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_dirty_accounting_never_negative_and_drains(ops, dirty_high_blocks):
    sim = Simulator(seed=3)
    server = FileServer(
        sim,
        "srv",
        HDD(HDDSpec(capacity_bytes=GiB, rotation_mode="expected")),
        software_overhead=0.0,
        os_cache_spec=OSCacheSpec(
            dirty_high=dirty_high_blocks * BLOCK,
            dirty_low=dirty_high_blocks * BLOCK // 2,
        ),
    )
    cache = server.os_cache

    def body():
        for op, block, blocks in ops:
            yield from server.serve(op, block * BLOCK, blocks * BLOCK)
            assert cache.dirty_bytes >= 0
            # Dirty runs are sorted and disjoint.
            runs = cache._dirty_runs
            for (s1, e1), (s2, e2) in zip(runs, runs[1:]):
                assert e1 <= s2
            # dirty_bytes covers the queued runs plus at most one
            # in-flight drain chunk (popped from the list, decremented
            # only when its device write lands).
            queued = sum(e - s for s, e in runs)
            assert queued <= cache.dirty_bytes <= queued + cache.spec.drain_chunk
        yield from cache.flush()

    sim.run_process(body())
    assert cache.dirty_bytes == 0
    assert cache._dirty_runs == []
    writes = sum(blocks * BLOCK for op, _, blocks in ops if op == "write")
    # Everything written was eventually drained (coalescing dedupes
    # overlapping writes, so drained <= written).
    assert cache.drained_bytes <= writes
    if writes:
        assert cache.drained_bytes > 0


@given(ops=requests)
@settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_stream_windows_stay_bounded(ops):
    sim = Simulator(seed=5)
    server = FileServer(
        sim,
        "srv",
        HDD(HDDSpec(capacity_bytes=GiB, rotation_mode="expected")),
        software_overhead=0.0,
    )
    cache = server.os_cache
    spec = cache.spec

    def body():
        for op, block, blocks in ops:
            yield from server.serve(op, block * BLOCK, blocks * BLOCK)
            assert len(cache._streams) <= spec.max_streams
            for stream in cache._streams:
                assert stream.window_start <= stream.buffered_until
                assert stream.window <= spec.readahead_max

    sim.run_process(body())
