"""Simulator.cancel: lazy event cancellation without clock impact."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def _waiter(sim, delay, log, tag):
    yield sim.timeout(delay)
    log.append((tag, sim.now))


def test_cancelled_timeout_never_fires():
    sim = Simulator(seed=1)
    log = []
    doomed = sim.timeout(5.0)
    doomed.add_callback(lambda ev: log.append(("doomed", sim.now)))
    sim.spawn(_waiter(sim, 1.0, log, "live"))
    sim.cancel(doomed)
    sim.run()
    assert log == [("live", 1.0)]


def test_cancel_does_not_advance_clock():
    # Popping a cancelled event must not move sim.now: the final clock
    # equals the last *real* event's time, not the cancelled one's.
    sim = Simulator(seed=1)
    log = []
    sim.spawn(_waiter(sim, 1.0, log, "live"))
    doomed = sim.timeout(7.5)
    sim.cancel(doomed)
    sim.run()
    assert sim.now == 1.0


def test_cancel_matches_never_scheduled_run_bitwise():
    # The determinism contract behind the telemetry sampler: a run
    # where an extra event was scheduled then cancelled pops exactly
    # the same clock values as a run where it never existed.
    def drive(extra):
        sim = Simulator(seed=9)
        log = []
        for i in range(5):
            sim.spawn(_waiter(sim, 0.1 * (i + 1) / 3.0, log, i))
        if extra:
            sim.cancel(sim.timeout(0.05))
            sim.cancel(sim.timeout(123.0))
        sim.run()
        return [(tag, now.hex()) for tag, now in log] + [sim.now.hex()]

    assert drive(extra=True) == drive(extra=False)


def test_queued_events_excludes_cancelled():
    sim = Simulator(seed=1)
    pending = sim.timeout(2.0)
    sim.timeout(3.0)
    assert sim.queued_events == 2
    sim.cancel(pending)
    assert sim.queued_events == 1


def test_cancel_processed_event_is_noop():
    sim = Simulator(seed=1)
    log = []
    sim.spawn(_waiter(sim, 1.0, log, "a"))
    sim.run()
    tick = sim.timeout(0.5)
    sim.spawn(_waiter(sim, 1.0, log, "b"))
    sim.run()
    assert tick.processed
    sim.cancel(tick)  # no-op, no error
    assert sim.queued_events == 0


def test_cancel_with_until_window():
    sim = Simulator(seed=1)
    log = []
    sim.spawn(_waiter(sim, 1.0, log, "early"))
    doomed = sim.timeout(1.5)
    sim.spawn(_waiter(sim, 4.0, log, "late"))
    sim.cancel(doomed)
    sim.run(until=2.0)
    assert sim.now == 2.0
    assert log == [("early", 1.0)]
    sim.run()
    assert log == [("early", 1.0), ("late", 4.0)]


def test_run_until_past_raises():
    sim = Simulator(seed=1)
    sim.spawn(_waiter(sim, 1.0, [], "x"))
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=0.5)


@pytest.mark.parametrize("scheduler", ["calendar", "heap"])
def test_cancel_heavy_run_keeps_queue_bounded(scheduler):
    """Lazy cancellation must not grow the timed queue without bound.

    A pause/resume-heavy caller (the telemetry sampler) cancels far
    more timers than it fires; compaction has to keep both the
    cancelled set and the queue proportional to the *live* entries,
    not to the total ever cancelled.
    """
    from repro.sim.core import _COMPACT_MIN_CANCELLED

    sim = Simulator(seed=1, scheduler=scheduler)
    keep = [sim.timeout(10.0 + i * 1e-3) for i in range(32)]
    for round_ in range(50):
        doomed = [sim.timeout(1.0 + i * 1e-4) for i in range(100)]
        for ev in doomed:
            sim.cancel(ev)
        # Steady-state invariant after every round: compaction fires
        # once the cancelled set reaches a quarter of the live size,
        # so it can never exceed that watermark by more than a round.
        assert len(sim._cancelled) <= max(
            _COMPACT_MIN_CANCELLED + 100, sim.queued_events
        )
    # 5000 cancels later the queue holds ~the 32 live timers.
    assert sim.queued_events == 32
    assert len(sim._cancelled) < 5000 / 4
    sim.run()
    assert all(ev.processed for ev in keep)
    assert sim.now == pytest.approx(10.0 + 31 * 1e-3)
    assert not sim._cancelled
