"""Edge-case tests for the simulator core."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_step_on_empty_queue_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_unknown_scheduler_rejected():
    with pytest.raises(SimulationError, match="unknown scheduler"):
        Simulator(scheduler="calender")  # simlint: disable=SIM003


def test_run_until_in_past_rejected():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_run_until_advances_clock_without_events():
    sim = Simulator()
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_queued_events_counts():
    sim = Simulator()
    assert sim.queued_events == 0
    sim.timeout(1.0)
    sim.timeout(2.0)
    assert sim.queued_events == 2
    sim.run()
    assert sim.queued_events == 0


def test_negative_schedule_rejected():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        # The engine must reject past scheduling; this is the
        # negative test for that guard.
        ev.succeed(delay=-1.0)  # simlint: disable=SIM002


def test_condition_value_collection_order():
    sim = Simulator()
    events = [sim.timeout(2.0, "b"), sim.timeout(1.0, "a")]
    combo = sim.all_of(events)
    sim.run()
    # Values keep the construction order, not the firing order.
    assert combo.value == ["b", "a"]


def test_foreign_event_rejected():
    sim_a = Simulator()
    sim_b = Simulator()

    def body():
        yield sim_b.timeout(1.0)

    sim_a.spawn(body())
    with pytest.raises(SimulationError, match="foreign"):
        sim_a.run()
        sim_b.run()


def test_deterministic_replay():
    """Two simulators with the same seed produce identical schedules."""

    def run_once():
        sim = Simulator(seed=99)
        log = []

        def worker(ident):
            rng = sim.rng.stream(f"w{ident}")
            for _ in range(5):
                yield sim.timeout(rng.uniform(0.1, 1.0))
                log.append((round(sim.now, 9), ident))

        def parent():
            yield sim.all_of([sim.spawn(worker(i)) for i in range(3)])

        sim.run_process(parent())
        return log

    assert run_once() == run_once()
