"""Unit tests for the event primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_event_succeed_delivers_value():
    sim = Simulator()
    ev = sim.event()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    ev.succeed(42)
    sim.run()
    assert seen == [42]
    assert ev.processed and ev.ok


def test_event_fail_records_exception():
    sim = Simulator()
    ev = sim.event()
    boom = ValueError("boom")
    seen = []
    ev.add_callback(lambda e: seen.append(e.exception))
    ev.fail(boom)
    sim.run()
    assert seen == [boom]
    assert not ev.ok


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(ValueError())


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_callback_after_processed_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("late")
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["late"]


def test_timeout_fires_at_right_time():
    sim = Simulator()
    times = []
    t = sim.timeout(2.5, value="hello")
    t.add_callback(lambda e: times.append((sim.now, e.value)))
    sim.run()
    assert times == [(2.5, "hello")]


def test_timeout_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)  # simlint: disable=SIM002


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for i in range(5):
        t = sim.timeout(1.0, value=i)
        t.add_callback(lambda e: order.append(e.value))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    events = [sim.timeout(i, value=i) for i in (3.0, 1.0, 2.0)]
    combo = sim.all_of(events)
    seen = []
    combo.add_callback(lambda e: seen.append((sim.now, e.value)))
    sim.run()
    assert seen == [(3.0, [3.0, 1.0, 2.0])]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    combo = sim.all_of([])
    sim.run()
    assert combo.processed and combo.value == []


def test_all_of_fails_fast_on_child_failure():
    sim = Simulator()
    bad = sim.event()
    slow = sim.timeout(10.0)
    combo = sim.all_of([bad, slow])
    combo.add_callback(lambda e: None)  # consume the failure
    bad.fail(RuntimeError("child failed"))
    sim.run()
    assert not combo.ok
    assert isinstance(combo.exception, RuntimeError)


def test_any_of_fires_on_first_event():
    sim = Simulator()
    events = [sim.timeout(3.0, "slow"), sim.timeout(1.0, "fast")]
    combo = sim.any_of(events)
    seen = []
    combo.add_callback(lambda e: seen.append((sim.now, e.value)))
    sim.run()
    assert seen == [(1.0, (1, "fast"))]
