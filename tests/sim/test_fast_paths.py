"""Regression tests for the event-engine fast paths.

The zero-delay run-queue, the Timeout free pool and the inlined
run-loop dispatch are pure optimisations: they must preserve the exact
event ordering and value semantics of the straightforward heap-only
engine.  These tests pin down the contracts the optimisations rely on.
"""

from repro.sim import Simulator
from repro.sim.events import Timeout


# ---------------------------------------------------------------------------
# zero-delay fast lane
# ---------------------------------------------------------------------------

def test_zero_delay_events_fire_in_trigger_order():
    sim = Simulator()
    order = []
    events = [sim.event() for _ in range(5)]
    for i, ev in enumerate(events):
        ev.add_callback(lambda e, i=i: order.append(i))
    # Trigger out of creation order: processing must follow trigger order.
    for i in (2, 0, 4, 1, 3):
        events[i].succeed(i)
    sim.run()
    assert order == [2, 0, 4, 1, 3]


def test_zero_delay_interleaves_with_due_heap_events():
    """A heap event scheduled for *now* fires before later-triggered
    zero-delay events (global schedule order, not queue priority)."""
    sim = Simulator()
    order = []

    def proc():
        order.append("t0")
        yield sim.timeout(1.0)
        order.append("t1")
        # Zero-delay timeout and an immediate succeed compete at t=1.
        yield sim.timeout(0.0)
        order.append("t1-zero")

    def other():
        yield sim.timeout(1.0)
        order.append("other-t1")

    sim.spawn(proc())
    sim.spawn(other())
    sim.run()
    assert order == ["t0", "t1", "other-t1", "t1-zero"]
    assert sim.now == 1.0


def test_zero_delay_chain_does_not_advance_time():
    sim = Simulator()
    hops = []

    def chain():
        for i in range(100):
            yield sim.timeout(0.0)
            hops.append(sim.now)

    sim.spawn(chain())
    sim.run()
    assert hops == [0.0] * 100


# ---------------------------------------------------------------------------
# Timeout pooling
# ---------------------------------------------------------------------------

def test_plain_timeouts_are_recycled():
    sim = Simulator()
    seen = []

    def proc():
        for _ in range(3):
            yield sim.timeout(0.5)
            seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [0.5, 1.0, 1.5]
    # The pool captured the plain yielded timeouts for reuse.
    assert len(sim._timeout_pool) >= 1


def test_pooled_timeout_reuse_delivers_fresh_values():
    sim = Simulator()
    values = []

    def proc():
        got = yield sim.timeout(0.1, value="first")
        values.append(got)
        got = yield sim.timeout(0.2, value="second")
        values.append(got)

    sim.spawn(proc())
    sim.run()
    assert values == ["first", "second"]


def test_timeouts_in_composite_waits_are_not_pooled():
    """any_of/all_of membership adds extra callbacks; such timeouts must
    never enter the free pool (a pooled rearm would corrupt the
    composite's child list)."""
    sim = Simulator()

    def proc():
        fast = sim.timeout(0.1, value="fast")
        slow = sim.timeout(5.0, value="slow")
        index, value = yield sim.any_of([fast, slow])
        assert (index, value) == (0, "fast")
        # The losing child is still pending and must stay valid.
        assert not slow.processed
        got = yield slow
        assert got == "slow"

    sim.spawn(proc())
    sim.run()
    assert not sim._timeout_pool or all(
        isinstance(t, Timeout) and t._cb0 is None and t._callbacks is None
        for t in sim._timeout_pool
    )


def test_held_timeout_state_is_read_back_before_reuse():
    sim = Simulator()
    states = []

    def proc():
        t = sim.timeout(1.0, value="v")
        got = yield t
        # Reading the completed timeout immediately after the yield is
        # inside the contract (reuse can only happen at the *next*
        # sim.timeout call).
        states.append((got, t.processed, t.ok))

    sim.spawn(proc())
    sim.run()
    assert states == [("v", True, True)]


# ---------------------------------------------------------------------------
# AnyOf winner index
# ---------------------------------------------------------------------------

def test_any_of_reports_winning_index_and_value():
    sim = Simulator()
    results = []

    def proc():
        events = [sim.timeout(3.0, "a"), sim.timeout(1.0, "b"),
                  sim.timeout(2.0, "c")]
        results.append((yield sim.any_of(events)))

    sim.spawn(proc())
    sim.run()
    assert results == [(1, "b")]


def test_any_of_tie_goes_to_first_scheduled():
    sim = Simulator()
    results = []

    def proc():
        events = [sim.timeout(1.0, "a"), sim.timeout(1.0, "b")]
        results.append((yield sim.any_of(events)))

    sim.spawn(proc())
    sim.run()
    assert results == [(0, "a")]


def test_all_of_collects_values_in_child_order():
    sim = Simulator()
    results = []

    def proc():
        events = [sim.timeout(2.0, "a"), sim.timeout(1.0, "b")]
        results.append((yield sim.all_of(events)))

    sim.spawn(proc())
    sim.run()
    assert results == [["a", "b"]]
    assert sim.now == 2.0
