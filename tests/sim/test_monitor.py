"""Tests for measurement helpers."""

import pytest

from repro.sim import Simulator
from repro.sim.monitor import Counter, IntervalLog, Tally, TimeWeighted


def test_counter():
    c = Counter("bytes")
    c.add(100)
    c.add(50)
    assert c.count == 2
    assert c.total == 150
    assert c.mean == 75
    assert Counter("empty").mean == 0.0


def test_tally_statistics():
    t = Tally()
    for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
        t.observe(v)
    assert t.count == 8
    assert t.mean == pytest.approx(5.0)
    assert t.stdev == pytest.approx(2.138, rel=1e-3)
    assert t.minimum == 2.0
    assert t.maximum == 9.0


def test_tally_empty_and_single():
    t = Tally()
    assert t.mean == 0.0
    assert t.variance == 0.0
    t.observe(3.0)
    assert t.mean == 3.0
    assert t.variance == 0.0


def test_tally_empty_extrema_are_zero():
    # A fresh tally used to leak its +/-inf sentinels into reports.
    t = Tally()
    assert t.minimum == 0.0
    assert t.maximum == 0.0
    t.observe(-2.0)
    assert t.minimum == -2.0
    assert t.maximum == -2.0


def test_time_weighted_average():
    sim = Simulator()
    tw = TimeWeighted(sim, initial=0.0)

    def body():
        tw.set(2.0)          # level 2 for [0, 4)
        yield sim.timeout(4.0)
        tw.set(6.0)          # level 6 for [4, 6)
        yield sim.timeout(2.0)
        return tw.average()

    # (2*4 + 6*2) / 6
    assert sim.run_process(body()) == pytest.approx(20.0 / 6.0)


def test_time_weighted_add():
    sim = Simulator()
    tw = TimeWeighted(sim, initial=1.0)
    tw.add(2.0)
    assert tw.level == 3.0


def test_interval_log_merges_overlaps():
    log = IntervalLog()
    log.record(0.0, 2.0)
    log.record(1.0, 3.0)   # overlaps
    log.record(5.0, 6.0)   # disjoint
    assert log.busy_time() == pytest.approx(4.0)


def test_interval_log_rejects_backwards():
    log = IntervalLog()
    with pytest.raises(ValueError):
        log.record(2.0, 1.0)


def test_interval_log_empty():
    assert IntervalLog().busy_time() == 0.0
