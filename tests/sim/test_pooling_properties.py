"""Differential property tests: pooled engine ≡ unpooled engine.

The engine recycles Timeouts, process bootstrap frames, generic
events and resource grants through free pools (PR: allocation-plane
overhaul), with a hard contract: pooling is invisible — for any
workload, ``Simulator(pooling=True)`` and ``Simulator(pooling=False)``
produce the *same* pop/dispatch stream (same clock values, same
payloads, same order), and a recycled object can never leak state
from its previous life.  These tests drive randomised schedule /
cancel / kill storms through both configurations (and across timed-
queue backends) and compare streams, plus direct stale-reuse
regression checks.
"""

import pytest

from repro.errors import ProcessKilled
from repro.sim import PriorityResource, Simulator
from repro.sim.resources import PRIORITY_LOW, PRIORITY_NORMAL

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


def run_storm(pooling, scheduler, plan):
    """Run a schedule/cancel/kill storm; return the observation stream.

    ``plan`` is a list of per-worker op tuples; every observable step
    appends ``(sim.now, worker, op_index, payload)``.  The stream is a
    pure function of the plan — pooling and backend must not show.
    """
    sim = Simulator(seed=11, scheduler=scheduler, pooling=pooling)
    device = PriorityResource(sim, capacity=2, name="dev")
    out = []
    procs = {}

    def worker(w, ops):
        try:
            yield from worker_body(w, ops)
        except ProcessKilled:
            out.append((sim.now, w, "killed-at", None))

    def worker_body(w, ops):
        for i, (kind, arg) in enumerate(ops):
            if kind == "t":
                got = yield sim.timeout(arg, value=(w, i))
                out.append((sim.now, w, i, got))
            elif kind == "t0":
                got = yield sim.timeout(0.0, value=(w, i))
                out.append((sim.now, w, i, got))
            elif kind == "ev":
                ev = sim.event()
                ev.succeed((w, i), delay=arg)
                got = yield ev
                out.append((sim.now, w, i, got))
            elif kind == "res":
                grant = yield device.acquire(
                    priority=PRIORITY_LOW if arg > 0.5e-5 else PRIORITY_NORMAL
                )
                try:
                    yield sim.timeout(arg)
                finally:
                    device.release(grant)
                out.append((sim.now, w, i, "released"))
            elif kind == "kill":
                victim = procs.get(arg % max(1, len(procs)))
                if victim is not None and victim is not procs[w] and victim.is_alive:
                    victim.kill()
                    out.append((sim.now, w, i, "killed"))
                yield sim.timeout(1e-7)
        out.append((sim.now, w, "done", None))

    for w, ops in enumerate(plan):
        procs[w] = sim.spawn(worker(w, ops), name=f"w{w}")
    sim.run()
    return out


_STORM_OP = st.one_of(
    st.tuples(st.just("t"), st.floats(min_value=1e-7, max_value=1e-3,
                                      allow_nan=False)),
    st.tuples(st.just("t0"), st.just(0.0)),
    st.tuples(st.just("ev"), st.sampled_from([0.0, 1e-6, 3e-5])),
    st.tuples(st.just("res"), st.floats(min_value=1e-7, max_value=1e-5,
                                        allow_nan=False)),
    st.tuples(st.just("kill"), st.integers(min_value=0, max_value=7)),
)

_PLAN = st.lists(
    st.lists(_STORM_OP, min_size=1, max_size=10),
    min_size=1, max_size=6,
)


@settings(max_examples=40, deadline=None)
@given(plan=_PLAN)
def test_pooled_equals_unpooled_random_storms(plan):
    reference = run_storm(pooling=False, scheduler="heap", plan=plan)
    for scheduler in ("auto", "calendar", "heap"):
        assert run_storm(True, scheduler, plan) == reference
    assert run_storm(False, "calendar", plan) == reference


def test_pooled_equals_unpooled_cancel_storm():
    """Timer storm with cancellations: recycled timeouts must not
    resurrect cancelled entries or reorder survivors."""

    def stream(pooling):
        sim = Simulator(seed=5, pooling=pooling)
        fired = []
        timers = [sim.timeout((i * 37 % 113 + 1) * 1e-6, value=i)
                  for i in range(400)]
        for i in range(0, 400, 3):
            sim.cancel(timers[i])

        def watcher():
            for t in timers:
                if not t.processed:
                    try:
                        got = yield t
                    except Exception:  # pragma: no cover - cancelled
                        continue
                    fired.append((sim.now, got))

        sim.spawn(watcher())
        sim.run()
        return fired

    assert stream(True) == stream(False)


# -- stale-reuse regression -----------------------------------------------
def test_recycled_event_leaks_no_payload():
    """A recycled generic Event must come back with a clean payload:
    untriggered, value None, no callbacks, no exception."""
    sim = Simulator(seed=0)
    seen = []

    def producer():
        for i in range(8):
            ev = sim.event()
            seen.append(ev)
            ev.succeed({"secret": i})
            yield ev

    sim.run_process(producer())
    assert sim._event_pool, "recycle path never engaged"
    fresh = sim.event()
    # The pool hands back one of the dispatched events...
    assert any(fresh is ev for ev in seen)
    # ...but with every trace of its previous life cleared.
    assert fresh._value is None
    assert fresh._cb0 is None and fresh._callbacks is None
    assert fresh._exc is None
    assert not fresh.triggered and not fresh.processed


def test_recycled_timeout_leaks_no_payload():
    sim = Simulator(seed=0)
    got = []

    def body():
        got.append((yield sim.timeout(1e-6, value="secret")))
        got.append((yield sim.timeout(1e-6)))  # reuses the pooled one

    sim.run_process(body())
    assert got == ["secret", None]


def test_recycled_grant_is_inert():
    """A processed-and-released grant returns to the pool with its
    self-referential value broken and re-arms cleanly."""
    sim = Simulator(seed=0)
    device = PriorityResource(sim, capacity=1)
    grants = []

    def body():
        for _ in range(3):
            g = yield device.acquire()
            grants.append(g)
            try:
                yield sim.timeout(1e-6)
            finally:
                device.release(g)

    sim.run_process(body())
    assert device._grant_pool
    pooled = device._grant_pool[-1]
    assert pooled._value is None and pooled._cb0 is None
    # The three acquisitions reused one object (capacity-1 round trip).
    assert len(set(map(id, grants))) == 1


def test_multi_waiter_event_not_pooled():
    """An event with a second callback (any_of watcher) must never be
    recycled — the extra waiter may still read it."""
    sim = Simulator(seed=0)

    def body():
        ev = sim.event()
        cond = sim.any_of([ev, sim.timeout(1.0)])
        ev.succeed("winner")
        idx, value = yield cond
        assert (idx, value) == (0, "winner")
        assert ev._value == "winner"  # still readable, not in pool
        assert ev not in sim._event_pool

    sim.run_process(body())


def test_pooling_off_never_pools():
    sim = Simulator(seed=0, pooling=False)

    def body():
        for i in range(5):
            ev = sim.event()
            ev.succeed(i)
            yield ev
            yield sim.timeout(1e-6)

    sim.run_process(body())
    assert sim._event_pool == []
    assert sim._timeout_pool == []
    assert sim._frame_pool == []


# -- auto scheduler -------------------------------------------------------
def test_auto_adopts_calendar_under_timer_pressure():
    sim = Simulator(seed=1, scheduler="auto")
    assert sim.active_scheduler == "heap"
    sim.schedule_many(delays=[(i % 97 + 1) * 1e-6 for i in range(1000)])
    assert sim.active_scheduler == "calendar"
    assert sim.scheduler == "auto"
    sim.run()


def test_auto_stays_on_heap_under_low_pressure():
    sim = Simulator(seed=1, scheduler="auto")

    def body():
        for _ in range(50):
            yield sim.timeout(1e-6)

    sim.run_process(body())
    assert sim.active_scheduler == "heap"


def test_auto_stream_identical_across_adoption():
    """The drain stream must be identical whether the backend is heap,
    calendar, or auto switching between them mid-run."""

    def stream(scheduler):
        sim = Simulator(seed=9, scheduler=scheduler)
        out = []

        def armer():
            yield sim.timeout(5e-4)
            ticks = sim.schedule_many(
                delays=[(i * 13 % 211 + 1) * 1e-6 for i in range(1500)]
            )
            for t in ticks:
                if not t.processed:
                    yield t
            out.append(("drained", round(sim.now, 12)))

        def ticker():
            for i in range(100):
                yield sim.timeout(29e-6)
                out.append((round(sim.now, 12), i))

        sim.spawn(armer())
        sim.spawn(ticker())
        sim.run()
        return out

    reference = stream("heap")
    assert stream("calendar") == reference
    assert stream("auto") == reference
