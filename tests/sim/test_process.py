"""Unit tests for simulated processes."""

import pytest

from repro.errors import ProcessKilled, SimulationError
from repro.sim import Simulator


def test_process_runs_and_returns_value():
    sim = Simulator()

    def body():
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)
        return "done"

    result = sim.run_process(body())
    assert result == "done"
    assert sim.now == 3.0


def test_process_receives_event_values():
    sim = Simulator()

    def body():
        got = yield sim.timeout(1.0, value="tick")
        return got

    assert sim.run_process(body()) == "tick"


def test_join_another_process():
    sim = Simulator()

    def child():
        yield sim.timeout(5.0)
        return 99

    def parent():
        proc = sim.spawn(child())
        value = yield proc
        return (sim.now, value)

    assert sim.run_process(parent()) == (5.0, 99)


def test_nested_spawn_concurrency():
    sim = Simulator()
    log = []

    def worker(ident, delay):
        yield sim.timeout(delay)
        log.append((sim.now, ident))
        return ident

    def parent():
        procs = [sim.spawn(worker(i, 3.0 - i)) for i in range(3)]
        results = yield sim.all_of(procs)
        return results

    assert sim.run_process(parent()) == [0, 1, 2]
    assert log == [(1.0, 2), (2.0, 1), (3.0, 0)]


def test_unhandled_process_exception_propagates_to_run():
    sim = Simulator()

    def body():
        yield sim.timeout(1.0)
        raise RuntimeError("kaboom")

    sim.spawn(body())
    with pytest.raises(RuntimeError, match="kaboom"):
        sim.run()


def test_joined_process_exception_delivered_to_joiner():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("child error")

    def parent():
        try:
            yield sim.spawn(child())
        except ValueError as exc:
            return f"caught {exc}"
        return "not caught"

    assert sim.run_process(parent()) == "caught child error"


def test_kill_interrupts_waiting_process():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(100.0)
        except ProcessKilled:
            log.append(sim.now)
            return "killed"
        return "survived"

    def killer(proc):
        yield sim.timeout(2.0)
        proc.kill()

    def parent():
        proc = sim.spawn(victim())
        sim.spawn(killer(proc))
        return (yield proc)

    assert sim.run_process(parent()) == "killed"
    assert log == [2.0]
    # The stale 100s timeout must not resurrect the dead process.
    assert sim.now >= 2.0


def test_kill_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)
        return 1

    def parent():
        proc = sim.spawn(quick())
        yield proc
        proc.kill()  # already done; must not raise
        return proc.value

    assert sim.run_process(parent()) == 1


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def body():
        yield 42  # type: ignore[misc]

    sim.spawn(body())
    with pytest.raises(SimulationError, match="expected an Event"):
        sim.run()


def test_process_body_must_be_generator():
    sim = Simulator()
    with pytest.raises(SimulationError, match="generator"):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_run_process_detects_deadlock():
    sim = Simulator()

    def stuck():
        yield sim.event()  # nobody will ever trigger this

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(stuck())


def test_run_until_pauses_clock():
    sim = Simulator()
    log = []

    def body():
        for _ in range(10):
            yield sim.timeout(1.0)
            log.append(sim.now)

    sim.spawn(body())
    sim.run(until=3.5)
    assert log == [1.0, 2.0, 3.0]
    assert sim.now == 3.5
    sim.run()
    assert log[-1] == 10.0
