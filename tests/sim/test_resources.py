"""Unit tests for PriorityResource and Store."""

import pytest

from repro.errors import SimulationError
from repro.sim import PriorityResource, Simulator, Store
from repro.sim.resources import PRIORITY_LOW, PRIORITY_NORMAL


def test_resource_serialises_access():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    log = []

    def user(ident):
        grant = yield res.acquire()
        log.append(("start", ident, sim.now))
        yield sim.timeout(2.0)
        res.release(grant)
        log.append(("end", ident, sim.now))

    def parent():
        yield sim.all_of([sim.spawn(user(i)) for i in range(3)])

    sim.run_process(parent())
    assert log == [
        ("start", 0, 0.0), ("end", 0, 2.0),
        ("start", 1, 2.0), ("end", 1, 4.0),
        ("start", 2, 4.0), ("end", 2, 6.0),
    ]


def test_resource_capacity_allows_parallelism():
    sim = Simulator()
    res = PriorityResource(sim, capacity=2)

    def user():
        grant = yield res.acquire()
        yield sim.timeout(2.0)
        res.release(grant)

    def parent():
        yield sim.all_of([sim.spawn(user()) for _ in range(4)])

    sim.run_process(parent())
    assert sim.now == 4.0  # two waves of two, not four serial


def test_low_priority_waits_for_normal():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def holder():
        grant = yield res.acquire()
        yield sim.timeout(1.0)
        res.release(grant)

    def low():
        grant = yield res.acquire(priority=PRIORITY_LOW)
        order.append("low")
        res.release(grant)

    def normal():
        # Arrives *after* low, but must be served first.
        yield sim.timeout(0.5)
        grant = yield res.acquire(priority=PRIORITY_NORMAL)
        order.append("normal")
        res.release(grant)

    def parent():
        hold = sim.spawn(holder())
        lo = sim.spawn(low())
        no = sim.spawn(normal())
        yield sim.all_of([hold, lo, no])

    sim.run_process(parent())
    assert order == ["normal", "low"]


def test_fifo_within_same_priority():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def user(ident):
        grant = yield res.acquire()
        order.append(ident)
        yield sim.timeout(1.0)
        res.release(grant)

    def parent():
        yield sim.all_of([sim.spawn(user(i)) for i in range(5)])

    sim.run_process(parent())
    assert order == [0, 1, 2, 3, 4]


def test_double_release_rejected():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)

    def body():
        grant = yield res.acquire()
        res.release(grant)
        with pytest.raises(SimulationError):
            res.release(grant)

    sim.run_process(body())


def test_release_wrong_resource_rejected():
    sim = Simulator()
    res_a = PriorityResource(sim, capacity=1)
    res_b = PriorityResource(sim, capacity=1)

    def body():
        grant = yield res_a.acquire()
        with pytest.raises(SimulationError):
            res_b.release(grant)
        res_a.release(grant)

    sim.run_process(body())


def test_resource_bad_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        PriorityResource(sim, capacity=0)


def test_queue_length_tracks_waiters():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)

    def holder():
        grant = yield res.acquire()
        yield sim.timeout(10.0)
        res.release(grant)

    def waiter():
        grant = yield res.acquire()
        res.release(grant)

    def parent():
        procs = [sim.spawn(holder())] + [sim.spawn(waiter()) for _ in range(3)]
        yield sim.timeout(1.0)
        assert res.queue_length == 3
        assert res.in_use == 1
        yield sim.all_of(procs)

    sim.run_process(parent())


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(3):
            yield sim.timeout(1.0)
            store.put(i)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((sim.now, item))

    def parent():
        yield sim.all_of([sim.spawn(producer()), sim.spawn(consumer())])

    sim.run_process(parent())
    assert got == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_store_get_before_put_blocks():
    sim = Simulator()
    store = Store(sim)

    def consumer():
        item = yield store.get()
        return (sim.now, item)

    def producer():
        yield sim.timeout(5.0)
        store.put("x")

    def parent():
        c = sim.spawn(consumer())
        sim.spawn(producer())
        return (yield c)

    assert sim.run_process(parent()) == (5.0, "x")


def test_store_buffered_items_have_len():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert len(store) == 2
