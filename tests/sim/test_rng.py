"""Tests for deterministic named random streams."""

from repro.sim import RandomStreams


def test_same_name_same_stream_object():
    streams = RandomStreams(1)
    assert streams.stream("a") is streams.stream("a")


def test_streams_deterministic_per_seed_and_name():
    a1 = RandomStreams(1).stream("x").random()
    a2 = RandomStreams(1).stream("x").random()
    b = RandomStreams(2).stream("x").random()
    c = RandomStreams(1).stream("y").random()
    assert a1 == a2
    assert a1 != b
    assert a1 != c


def test_creation_order_does_not_matter():
    s1 = RandomStreams(7)
    s1.stream("first")
    v1 = s1.stream("second").random()
    s2 = RandomStreams(7)
    v2 = s2.stream("second").random()
    assert v1 == v2


def test_fork_is_independent_and_deterministic():
    base = RandomStreams(3)
    fork_a = base.fork("rank0")
    fork_b = base.fork("rank1")
    fork_a2 = RandomStreams(3).fork("rank0")
    assert fork_a.stream("s").random() == fork_a2.stream("s").random()
    assert fork_a2.stream("s").random() != fork_b.stream("s").random()
