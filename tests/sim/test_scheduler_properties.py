"""Differential property tests: calendar backend ≡ heap backend.

The calendar queue replaced the binary heap as the default timed-queue
backend, with a hard contract: for any sequence of schedule / cancel /
pop operations both backends produce the *same* pop stream — same
clock values, same payloads, same order.  These tests drive randomised
operation sequences (hypothesis) plus the known-nasty shapes (timer
storms, far-future overflow, the lost-event regression) through both
backends and compare streams.
"""

import pytest

from repro.sim import Simulator

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


def drive(scheduler, ops):
    """Apply an op sequence to a fresh simulator; return the pop stream.

    Ops: ``("t", delay)`` schedules a timeout; ``("c", i)`` cancels the
    i-th (mod len) not-yet-fired timer scheduled so far; ``("p", n)``
    pops up to n events.  Whatever remains is drained at the end.
    """
    sim = Simulator(scheduler=scheduler)
    scheduled = []
    popped = []
    count = 0

    def pop_one():
        ev = sim._pop_merged()
        if ev is None:
            return False
        popped.append((sim.now, ev._value))
        ev._process()
        return True

    for op in ops:
        kind, arg = op
        if kind == "t":
            scheduled.append(sim.timeout(arg, value=count))
            count += 1
        elif kind == "c" and scheduled:
            ev = scheduled[arg % len(scheduled)]
            if not ev.processed:
                sim.cancel(ev)
        elif kind == "p":
            for _ in range(arg):
                if not pop_one():
                    break
    while pop_one():
        pass
    return popped


def assert_backends_agree(ops):
    assert drive("calendar", ops) == drive("heap", ops)


#: Delay magnitudes straddle the calendar's initial bucket width
#: (80 us), its horizon, and the overflow list: sub-bucket, in-window,
#: and far-future entries all occur in one sequence.
_DELAYS = st.one_of(
    st.floats(min_value=0.0, max_value=1e-4,
              allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=1.0,
              allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=500.0,
              allow_nan=False, allow_infinity=False),
)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("t"), _DELAYS),
        st.tuples(st.just("c"), st.integers(min_value=0, max_value=63)),
        st.tuples(st.just("p"), st.integers(min_value=1, max_value=8)),
    ),
    min_size=3,
    max_size=60,
)


@settings(max_examples=80, deadline=None)
@given(ops=_OPS)
def test_random_schedule_cancel_pop_streams_identical(ops):
    assert_backends_agree(ops)


def test_lost_event_regression():
    """The minimal sequence that once lost an event: a far-future
    timeout forces a jump to the overflow list, its cancellation is
    lazily skipped *without advancing the clock*, and a subsequent
    near-term timeout must not insort into the already-spent prefix of
    the due batch (where no pop would ever read it again)."""
    assert_backends_agree([
        ("t", 454.387), ("c", 0), ("p", 7), ("t", 0.347),
    ])


def test_timer_storm_identical():
    # Thousands of pending timers across every delay regime, popped in
    # interleaved bursts — the calendar's resize policy fires several
    # times along the way.
    ops = []
    for i in range(2000):
        ops.append(("t", (i * 37 % 1000) * 1.7e-6))
        if i % 3 == 0:
            ops.append(("t", (i * 101 % 97) * 0.11))
        if i % 7 == 0:
            ops.append(("p", 4))
        if i % 11 == 0:
            ops.append(("c", i * 13))
    assert_backends_agree(ops)


def test_far_future_overflow_identical():
    # Everything lands beyond the initial calendar horizon; pops must
    # migrate overflow entries batch by batch in heap order.
    ops = [("t", 100.0 + (i * 57 % 113) * 3.3) for i in range(300)]
    ops += [("c", i * 7) for i in range(40)]
    ops.append(("p", 100))
    ops += [("t", (i * 29 % 41) * 0.01) for i in range(50)]
    assert_backends_agree(ops)


def test_schedule_many_matches_sequential_timeouts():
    """Bulk scheduling is bit-identical to a loop of sim.timeout()."""
    delays = [(i * 37 % 1000) * 1.7e-5 for i in range(500)]

    def stream(bulk, scheduler):
        sim = Simulator(scheduler=scheduler)
        if bulk:
            sim.schedule_many(delays)
        else:
            for d in delays:
                sim.timeout(d)
        out = []
        while True:
            ev = sim._pop_merged()
            if ev is None:
                return out
            out.append(sim.now)
            ev._process()

    reference = stream(bulk=False, scheduler="heap")
    for scheduler in ("calendar", "heap"):
        assert stream(bulk=True, scheduler=scheduler) == reference


def test_schedule_many_absolute_matches_cumulative_chain():
    """The at= form (sampler tick pre-arming) equals arming each tick
    from inside the previous tick's callback."""
    interval = 0.05

    def chained():
        sim = Simulator()
        out = []

        def body():
            for _ in range(32):
                yield sim.timeout(interval)
                out.append(sim.now)

        sim.run_process(body())
        return out

    def bulk():
        sim = Simulator()
        out = []
        times = []
        t = sim.now
        for _ in range(32):
            t += interval
            times.append(t)

        def body():
            for tick in sim.schedule_many(at=times):
                yield tick
                out.append(sim.now)

        sim.run_process(body())
        return out

    assert bulk() == chained()
