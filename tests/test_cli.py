"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


def test_calibrate_prints_parameters(capsys):
    assert main(["calibrate", "--dservers", "4", "--cservers", "2"]) == 0
    out = capsys.readouterr().out
    assert "beta_D" in out and "beta_C" in out
    assert "crossover" in out


def test_compare_runs_small_workload(capsys):
    code = main([
        "compare", "--processes", "2", "--requests-per-rank", "16",
        "--dservers", "2", "--cservers", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "stock MB/s" in out
    assert "S4D routing" in out


def test_replay_trace(tmp_path, capsys):
    trace = tmp_path / "t.trace"
    trace.write_text(
        "0 write 0 16KB\n0 read 0 16KB\n1 write 16KB 16KB\n"
    )
    code = main([
        "replay", str(trace), "--dservers", "2", "--cservers", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "replaying 3 requests" in out


def test_trace_writes_chrome_trace(tmp_path, capsys):
    import json

    out = tmp_path / "trace.json"
    jsonl = tmp_path / "spans.jsonl"
    metrics = tmp_path / "metrics.json"
    code = main([
        "trace", "--processes", "2", "--requests-per-rank", "8",
        "--dservers", "2", "--cservers", "1", "--read-runs", "1",
        "--file-size", "4MB",
        "--out", str(out), "--jsonl", str(jsonl), "--metrics", str(metrics),
    ])
    assert code == 0
    text = capsys.readouterr().out
    assert "chrome trace:" in text
    assert "device_service" in text  # the latency-breakdown table
    assert "tracer overhead" in text

    data = json.loads(out.read_text())
    assert any(e["ph"] == "X" for e in data["traceEvents"])
    assert all(json.loads(line) for line in jsonl.read_text().splitlines())
    assert "cache" in json.loads(metrics.read_text())


def test_experiments_forwarding(capsys):
    assert main(["experiments", "--list"]) == 0
    out = capsys.readouterr().out
    assert "fig6a" in out
    assert "table4" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_compare_with_streaming_telemetry(tmp_path, capsys):
    series = tmp_path / "series.jsonl"
    metrics = tmp_path / "metrics.json"
    code = main([
        "compare", "--processes", "2", "--requests-per-rank", "16",
        "--dservers", "2", "--cservers", "2", "--jobs", "4",
        "--sample-interval", "0.5", "--series-out", str(series),
        "--metrics-out", str(metrics), "--profile",
    ])
    assert code == 0
    out = capsys.readouterr().out
    # Telemetry lives in the parent process: spawn workers are off.
    assert "forcing --jobs 1" in out
    assert "time series:" in out
    assert "engine wall-time by component" in out

    import json

    rows = [json.loads(line) for line in
            series.read_text().splitlines() if line.strip()]
    assert rows
    assert any(r["series"] == "cache.read_hit_ratio" for r in rows)
    assert any(r["kind"] == "latency" and "p99" in r for r in rows)
    document = json.loads(metrics.read_text())
    # compare = two runs (stock + S4D) -> a multi-run snapshot.
    assert set(document) == {"runs"}
    assert len(document["runs"]) == 2


def test_monitor_once_via_main(tmp_path, capsys):
    import json

    series = tmp_path / "series.jsonl"
    series.write_text(json.dumps(
        {"t": 1.0, "run": 0, "phase": None, "series": "cache.read_hits",
         "kind": "counter", "count": 5, "window_count": 5, "rate": 5.0}
    ) + "\n")
    assert main(["monitor", str(series), "--once"]) == 0
    out = capsys.readouterr().out
    assert "cache.read_hits" in out
