"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


def test_calibrate_prints_parameters(capsys):
    assert main(["calibrate", "--dservers", "4", "--cservers", "2"]) == 0
    out = capsys.readouterr().out
    assert "beta_D" in out and "beta_C" in out
    assert "crossover" in out


def test_compare_runs_small_workload(capsys):
    code = main([
        "compare", "--processes", "2", "--requests-per-rank", "16",
        "--dservers", "2", "--cservers", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "stock MB/s" in out
    assert "S4D routing" in out


def test_replay_trace(tmp_path, capsys):
    trace = tmp_path / "t.trace"
    trace.write_text(
        "0 write 0 16KB\n0 read 0 16KB\n1 write 16KB 16KB\n"
    )
    code = main([
        "replay", str(trace), "--dservers", "2", "--cservers", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "replaying 3 requests" in out


def test_trace_writes_chrome_trace(tmp_path, capsys):
    import json

    out = tmp_path / "trace.json"
    jsonl = tmp_path / "spans.jsonl"
    metrics = tmp_path / "metrics.json"
    code = main([
        "trace", "--processes", "2", "--requests-per-rank", "8",
        "--dservers", "2", "--cservers", "1", "--read-runs", "1",
        "--file-size", "4MB",
        "--out", str(out), "--jsonl", str(jsonl), "--metrics", str(metrics),
    ])
    assert code == 0
    text = capsys.readouterr().out
    assert "chrome trace:" in text
    assert "device_service" in text  # the latency-breakdown table
    assert "tracer overhead" in text

    data = json.loads(out.read_text())
    assert any(e["ph"] == "X" for e in data["traceEvents"])
    assert all(json.loads(line) for line in jsonl.read_text().splitlines())
    assert "cache" in json.loads(metrics.read_text())


def test_experiments_forwarding(capsys):
    assert main(["experiments", "--list"]) == 0
    out = capsys.readouterr().out
    assert "fig6a" in out
    assert "table4" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
