"""Unit + property tests for the generic interval map."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.intervals import Interval, IntervalMap


def test_empty_lookup_is_gap():
    m = IntervalMap()
    assert m.lookup(0, 10) == [(0, 10, None)]
    assert not m.covered(0, 10)
    assert not m.overlaps(0, 10)


def test_set_and_exact_lookup():
    m = IntervalMap()
    m.set(10, 20, "a")
    assert m.lookup(10, 20) == [(10, 20, "a")]
    assert m.covered(10, 20)


def test_lookup_tiles_gaps_and_values():
    m = IntervalMap()
    m.set(10, 20, "a")
    m.set(30, 40, "b")
    assert m.lookup(0, 50) == [
        (0, 10, None),
        (10, 20, "a"),
        (20, 30, None),
        (30, 40, "b"),
        (40, 50, None),
    ]


def test_overwrite_splits_existing():
    m = IntervalMap()
    m.set(0, 100, "old")
    m.set(40, 60, "new")
    assert m.lookup(0, 100) == [
        (0, 40, "old"),
        (40, 60, "new"),
        (60, 100, "old"),
    ]
    m.check_invariants()


def test_overwrite_spanning_multiple():
    m = IntervalMap()
    m.set(0, 10, "a")
    m.set(20, 30, "b")
    m.set(40, 50, "c")
    m.set(5, 45, "big")
    assert m.lookup(0, 50) == [
        (0, 5, "a"),
        (5, 45, "big"),
        (45, 50, "c"),
    ]
    m.check_invariants()


def test_clear_range_returns_clipped_pieces():
    m = IntervalMap()
    m.set(0, 100, "x")
    removed = m.clear_range(25, 75)
    assert removed == [Interval(25, 75, "x")]
    assert m.lookup(0, 100) == [
        (0, 25, "x"),
        (25, 75, None),
        (75, 100, "x"),
    ]


def test_remove_exact():
    m = IntervalMap()
    m.set(5, 15, "v")
    assert m.remove_exact(5, 15).value == "v"
    with pytest.raises(KeyError):
        m.remove_exact(5, 15)


def test_remove_exact_wrong_bounds_rejected():
    m = IntervalMap()
    m.set(5, 15, "v")
    with pytest.raises(KeyError):
        m.remove_exact(5, 10)


def test_value_at():
    m = IntervalMap()
    m.set(10, 20, "a")
    assert m.value_at(10) == "a"
    assert m.value_at(19) == "a"
    assert m.value_at(20) is None
    assert m.value_at(9) is None


def test_total_bytes():
    m = IntervalMap()
    m.set(0, 10, "a")
    m.set(20, 25, "b")
    assert m.total_bytes == 15


def test_bad_range_rejected():
    m = IntervalMap()
    with pytest.raises(ValueError):
        m.set(10, 10, "empty")
    with pytest.raises(ValueError):
        m.set(-1, 5, "negative")


# -- property tests against a byte-level reference model -------------------

_ops = st.lists(
    st.tuples(
        st.sampled_from(["set", "clear"]),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=0, max_value=9),
    ),
    max_size=40,
)


@given(_ops, st.integers(min_value=0, max_value=220),
       st.integers(min_value=1, max_value=80))
@settings(max_examples=200, deadline=None)
def test_interval_map_matches_byte_model(ops, q_start, q_len):
    m = IntervalMap()
    model: dict[int, int] = {}
    for kind, start, length, value in ops:
        end = start + length
        if kind == "set":
            m.set(start, end, value)
            for b in range(start, end):
                model[b] = value
        else:
            m.clear_range(start, end)
            for b in range(start, end):
                model.pop(b, None)
        m.check_invariants()

    q_end = q_start + q_len
    segments = m.lookup(q_start, q_end)
    # Segments exactly tile the query.
    assert segments[0][0] == q_start
    assert segments[-1][1] == q_end
    for (s1, e1, _), (s2, e2, _) in zip(segments, segments[1:]):
        assert e1 == s2
    # Every byte agrees with the model.
    for seg_start, seg_end, value in segments:
        for b in range(seg_start, seg_end):
            assert model.get(b) == value
