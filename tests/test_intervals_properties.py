"""Randomised property tests for IntervalMap against a byte-map oracle.

The interval map backs both file-content stamp tracking and the DMT's
per-file index, so its query results must match a brute-force
byte-level reference for any operation sequence.  Seeded generators
keep every run reproducible.
"""

import random

import pytest

from repro.intervals import IntervalMap

SPACE = 256  # small enough that collisions/splits happen constantly


class ByteOracle:
    """Reference model: one value (or None) per byte offset."""

    def __init__(self):
        self.bytes: list = [None] * SPACE

    def set(self, start, end, value):
        for i in range(start, end):
            self.bytes[i] = value

    def clear(self, start, end):
        for i in range(start, end):
            self.bytes[i] = None

    def value_at(self, offset):
        return self.bytes[offset]

    def covered(self, start, end):
        return all(v is not None for v in self.bytes[start:end])

    def overlaps(self, start, end):
        return any(v is not None for v in self.bytes[start:end])

    def lookup_values(self, start, end):
        """Per-byte values over [start, end) — the flattened lookup()."""
        return self.bytes[start:end]


def random_range(rng):
    start = rng.randrange(0, SPACE - 1)
    end = rng.randrange(start + 1, min(start + 48, SPACE) + 1)
    return start, end


def flatten_lookup(segments, start, end):
    """Expand lookup() segments back to one value per byte."""
    out = []
    for seg_start, seg_end, value in segments:
        out.extend([value] * (seg_end - seg_start))
    assert segments[0][0] == start and segments[-1][1] == end
    for (_, a_end, _), (b_start, _, _) in zip(segments, segments[1:]):
        assert a_end == b_start, "lookup segments must tile contiguously"
    return out


@pytest.mark.parametrize("seed", range(8))
def test_random_ops_match_byte_oracle(seed):
    rng = random.Random(seed)
    imap: IntervalMap = IntervalMap()
    oracle = ByteOracle()
    for step in range(400):
        op = rng.random()
        start, end = random_range(rng)
        if op < 0.55:
            value = (step, start)
            imap.set(start, end, value)
            oracle.set(start, end, value)
        elif op < 0.8:
            removed = imap.clear_range(start, end)
            # Removed pieces are clipped to the query and non-empty.
            for piece in removed:
                assert start <= piece.start < piece.end <= end
            oracle.clear(start, end)
        else:
            # add() must refuse exactly when the oracle sees overlap.
            if oracle.overlaps(start, end):
                with pytest.raises(ValueError):
                    imap.add(start, end, "dup")
            else:
                imap.add(start, end, (step, start))
                oracle.set(start, end, (step, start))
        imap.check_invariants()

        q_start, q_end = random_range(rng)
        assert flatten_lookup(
            imap.lookup(q_start, q_end), q_start, q_end
        ) == oracle.lookup_values(q_start, q_end)
        assert imap.covered(q_start, q_end) == oracle.covered(q_start, q_end)
        assert imap.overlaps(q_start, q_end) == oracle.overlaps(q_start, q_end)
        offset = rng.randrange(0, SPACE)
        assert imap.value_at(offset) == oracle.value_at(offset)

    assert imap.total_bytes == sum(
        1 for v in oracle.bytes if v is not None
    )


@pytest.mark.parametrize("seed", range(4))
def test_overlapping_is_unclipped_and_ordered(seed):
    rng = random.Random(1000 + seed)
    imap: IntervalMap = IntervalMap()
    oracle = ByteOracle()
    for step in range(120):
        start, end = random_range(rng)
        value = (step, start)
        imap.set(start, end, value)
        oracle.set(start, end, value)

    for _ in range(200):
        q_start, q_end = random_range(rng)
        got = list(imap.overlapping(q_start, q_end))
        # Ordered, unclipped, and exactly the intervals with a byte in
        # the query window.
        assert got == sorted(got, key=lambda item: item.start)
        expected = [
            item for item in imap
            if item.start < q_end and item.end > q_start
        ]
        assert got == expected
        for item in got:
            assert oracle.overlaps(
                max(item.start, q_start), min(item.end, q_end)
            )


def test_remove_exact_requires_exact_bounds():
    imap: IntervalMap = IntervalMap()
    imap.set(10, 20, "a")
    with pytest.raises(KeyError):
        imap.remove_exact(10, 19)
    with pytest.raises(KeyError):
        imap.remove_exact(11, 20)
    assert imap.remove_exact(10, 20).value == "a"
    assert len(imap) == 0 and imap.total_bytes == 0
