"""Tests for unit parsing and formatting."""

import pytest

from repro.errors import ConfigError
from repro.units import (
    GiB,
    KiB,
    MiB,
    fmt_bandwidth,
    fmt_size,
    fmt_time,
    parse_size,
)


def test_parse_size_suffixes():
    assert parse_size("16KB") == 16 * KiB
    assert parse_size("16KiB") == 16 * KiB
    assert parse_size("2MB") == 2 * MiB
    assert parse_size("1.5MB") == int(1.5 * MiB)
    assert parse_size("3GiB") == 3 * GiB
    assert parse_size("100") == 100
    assert parse_size("100B") == 100
    assert parse_size("4 kb") == 4 * KiB  # case/space tolerant


def test_parse_size_int_passthrough():
    assert parse_size(4096) == 4096
    with pytest.raises(ConfigError):
        parse_size(-1)


def test_parse_size_rejects_garbage():
    for bad in ("", "KB", "12XB", "1.2.3MB", "-5MB"):
        with pytest.raises(ConfigError):
            parse_size(bad)


def test_parse_size_rejects_fractional_bytes():
    with pytest.raises(ConfigError):
        parse_size("0.3B")


def test_fmt_size():
    assert fmt_size(512) == "512B"
    assert fmt_size(16 * KiB) == "16.0KiB"
    assert fmt_size(3 * MiB) == "3.0MiB"
    assert fmt_size(2 * GiB) == "2.0GiB"


def test_fmt_bandwidth():
    assert fmt_bandwidth(50 * MiB) == "50.00MB/s"


def test_fmt_time_ranges():
    assert fmt_time(5e-9).endswith("ns")
    assert fmt_time(5e-6).endswith("us")
    assert fmt_time(5e-3).endswith("ms")
    assert fmt_time(5.0).endswith("s")
