"""Tests for trace parsing, export and replay."""

import io

import pytest

from repro.cluster import ClusterSpec, run_workload
from repro.errors import WorkloadError
from repro.units import KiB
from repro.workloads import TraceWorkload, export_trace, parse_trace

SAMPLE = """\
# rank op offset size
0 write 0 16KB
1 write 16384 16KB
0 read 0 16KB
1 read 16384 8KB
"""


def test_parse_trace_basic():
    requests = parse_trace(SAMPLE.splitlines())
    assert len(requests) == 4
    assert requests[0].rank == 0
    assert requests[0].op == "write"
    assert requests[0].size == 16 * KiB
    assert requests[3].size == 8 * KiB


def test_parse_trace_errors_have_line_numbers():
    with pytest.raises(WorkloadError, match=":2:"):
        parse_trace(["# ok", "0 write 0"])
    with pytest.raises(WorkloadError, match="read/write"):
        parse_trace(["0 erase 0 16KB"])
    with pytest.raises(WorkloadError, match="no requests"):
        parse_trace(["# only comments"])
    with pytest.raises(WorkloadError):
        parse_trace(["-1 read 0 16KB"])
    with pytest.raises(WorkloadError):
        parse_trace(["0 read 0 0"])


def test_workload_shape_from_trace():
    w = TraceWorkload(SAMPLE.splitlines())
    assert w.processes == 2
    assert w.segments_for_rank(0) == [(0, 16 * KiB), (0, 16 * KiB)]
    assert w.size_hint() == 2 * 16 * KiB


def test_op_filter():
    w = TraceWorkload(SAMPLE.splitlines(), op_filter="write")
    assert all(r.op == "write" for r in w.requests)
    with pytest.raises(WorkloadError):
        TraceWorkload(["0 write 0 4KB"], op_filter="read")
    with pytest.raises(WorkloadError):
        TraceWorkload(SAMPLE.splitlines(), op_filter="erase")


def test_trace_from_file(tmp_path):
    path = tmp_path / "a.trace"
    path.write_text(SAMPLE)
    w = TraceWorkload(str(path))
    assert len(w.requests) == 4


def test_mixed_replay_runs():
    spec = ClusterSpec(num_dservers=2, num_cservers=2, num_nodes=2, seed=31)
    w = TraceWorkload(SAMPLE.splitlines())
    from repro.cluster import build_cluster
    from repro.mpiio import MPIJob

    cluster = build_cluster(spec, s4d=True, cache_capacity=64 * KiB)
    stats = MPIJob(cluster.sim, cluster.layer, w.processes).run(w.make_body())
    assert sum(s.bytes_written for s in stats) == 2 * 16 * KiB
    assert sum(s.bytes_read for s in stats) == 16 * KiB + 8 * KiB


def test_record_then_replay_round_trip():
    """Close the loop: trace a simulated run, export, replay it."""
    from repro.workloads import IORWorkload

    spec = ClusterSpec(num_dservers=2, num_cservers=2, num_nodes=2, seed=33)
    original = IORWorkload(2, "16KB", "1MB", pattern="random", seed=3)
    result = run_workload(spec, original, s4d=False, phases=("write",))

    buffer = io.StringIO()
    count = export_trace(result.tracer.records, buffer)
    assert count == len(result.tracer.records)

    replayed = TraceWorkload(buffer.getvalue().splitlines())
    assert replayed.processes == 2
    assert replayed.data_bytes() == original.data_bytes()
    # Same per-rank offsets in the same order.
    for rank in range(2):
        assert replayed.segments_for_rank(rank) == (
            original.segments_for_rank(rank)
        )
