"""Tests for the workload generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.iosig import detect_signature
from repro.units import KiB, MiB
from repro.workloads import (
    HPIOWorkload,
    IORWorkload,
    SyntheticMixWorkload,
    TileIOWorkload,
)


# -- IOR ----------------------------------------------------------------

def test_ior_sequential_offsets():
    w = IORWorkload(4, 16 * KiB, MiB, pattern="sequential")
    segs = w.segments_for_rank(1)
    region = MiB // 4
    assert segs[0] == (region, 16 * KiB)
    assert detect_signature(segs) == "sequential"
    assert len(segs) == region // (16 * KiB)


def test_ior_random_is_permutation_of_sequential():
    seq = IORWorkload(4, 16 * KiB, MiB, pattern="sequential", seed=5)
    rnd = IORWorkload(4, 16 * KiB, MiB, pattern="random", seed=5)
    for rank in range(4):
        assert sorted(rnd.segments_for_rank(rank)) == seq.segments_for_rank(rank)
        assert rnd.segments_for_rank(rank) != seq.segments_for_rank(rank)
        assert detect_signature(rnd.segments_for_rank(rank)) == "random"


def test_ior_random_deterministic_per_seed():
    a = IORWorkload(4, 16 * KiB, MiB, pattern="random", seed=7)
    b = IORWorkload(4, 16 * KiB, MiB, pattern="random", seed=7)
    c = IORWorkload(4, 16 * KiB, MiB, pattern="random", seed=8)
    assert a.segments_for_rank(2) == b.segments_for_rank(2)
    assert a.segments_for_rank(2) != c.segments_for_rank(2)


def test_ior_regions_disjoint_across_ranks():
    w = IORWorkload(4, 16 * KiB, MiB, pattern="random")
    seen = set()
    for rank in range(4):
        for off, size in w.segments_for_rank(rank):
            assert (off, size) not in seen
            seen.add((off, size))
    assert w.data_bytes() == len(seen) * 16 * KiB


def test_ior_validation():
    with pytest.raises(WorkloadError):
        IORWorkload(4, 16 * KiB, MiB, pattern="zigzag")
    with pytest.raises(WorkloadError):
        IORWorkload(0, 16 * KiB, MiB)
    with pytest.raises(WorkloadError):
        IORWorkload(64, MiB, MiB)  # region smaller than one request
    with pytest.raises(WorkloadError):
        IORWorkload(4, 16 * KiB, MiB).segments_for_rank(9)


# -- HPIO ----------------------------------------------------------------

def test_hpio_zero_spacing_is_sequential():
    w = HPIOWorkload(2, region_count=16, region_size=8 * KiB, region_spacing=0)
    assert detect_signature(w.segments_for_rank(0)) == "sequential"


def test_hpio_spacing_creates_stride():
    w = HPIOWorkload(2, region_count=16, region_size=8 * KiB,
                     region_spacing=2 * KiB)
    sig = detect_signature(w.segments_for_rank(0))
    assert sig == f"strided({2 * KiB})"


def test_hpio_ranks_disjoint():
    w = HPIOWorkload(3, region_count=8, region_size=8 * KiB,
                     region_spacing=1 * KiB)
    ranges = []
    for rank in range(3):
        for off, size in w.segments_for_rank(rank):
            ranges.append((off, off + size))
    ranges.sort()
    for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
        assert e1 <= s2


def test_hpio_data_bytes():
    w = HPIOWorkload(2, region_count=10, region_size=8 * KiB, region_spacing=0)
    assert w.data_bytes() == 2 * 10 * 8 * KiB


# -- MPI-Tile-IO -----------------------------------------------------------

def test_tileio_grid_factorisation():
    assert TileIOWorkload(100).tiles_x == 10
    assert TileIOWorkload(200).tiles_x * TileIOWorkload(200).tiles_y == 200
    assert TileIOWorkload(7).tiles_x == 1


def test_tileio_rows_are_nested_strided():
    w = TileIOWorkload(4, elements_x=4, elements_y=4, element_size=KiB)
    segs = w.segments_for_rank(0)
    assert len(segs) == 4
    # Constant stride between rows.
    gaps = {
        b[0] - (a[0] + a[1]) for a, b in zip(segs, segs[1:])
    }
    assert len(gaps) == 1
    sig = detect_signature(segs)
    assert sig.startswith("strided")


def test_tileio_tiles_exactly_tile_the_dataset():
    w = TileIOWorkload(4, elements_x=2, elements_y=2, element_size=KiB)
    covered = set()
    for rank in range(4):
        for off, size in w.segments_for_rank(rank):
            for b in range(off, off + size, KiB):
                assert b not in covered
                covered.add(b)
    assert len(covered) == 4 * 2 * 2  # all tiles, all elements


def test_tileio_validation():
    with pytest.raises(WorkloadError):
        TileIOWorkload(4, elements_x=0)


# -- synthetic mix -----------------------------------------------------------

def test_mix_random_fraction():
    w = SyntheticMixWorkload(10, 10 * MiB, random_fraction=0.3)
    assert sum(w.is_random_rank(r) for r in range(10)) == 3
    assert detect_signature(w.segments_for_rank(9)) == "sequential"
    assert detect_signature(w.segments_for_rank(0)) == "random"


def test_mix_request_sizes_differ():
    w = SyntheticMixWorkload(
        2, 8 * MiB, random_fraction=0.5,
        sequential_request="1MB", random_request="16KB",
    )
    assert w.segments_for_rank(0)[0][1] == 16 * KiB
    assert w.segments_for_rank(1)[0][1] == MiB


def test_mix_validation():
    with pytest.raises(WorkloadError):
        SyntheticMixWorkload(2, MiB, random_fraction=1.5)


# -- base-class behaviours ----------------------------------------------

def test_size_hint_covers_all_segments():
    for w in (
        IORWorkload(4, 16 * KiB, MiB),
        HPIOWorkload(2, 8, 8 * KiB, KiB),
        TileIOWorkload(4, 3, 3, KiB),
    ):
        hint = w.size_hint()
        for rank in range(w.processes):
            for off, size in w.segments_for_rank(rank):
                assert off + size <= hint


def test_make_body_rejects_bad_op():
    with pytest.raises(WorkloadError):
        IORWorkload(2, 16 * KiB, MiB).make_body("append")


@given(
    processes=st.integers(min_value=1, max_value=8),
    blocks=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=60, deadline=None)
def test_ior_property_random_covers_region(processes, blocks, seed):
    req = 4 * KiB
    w = IORWorkload(
        processes, req, processes * blocks * req, pattern="random", seed=seed
    )
    for rank in range(processes):
        segs = w.segments_for_rank(rank)
        assert len(segs) == blocks
        offs = sorted(o for o, _ in segs)
        base = rank * blocks * req
        assert offs == [base + i * req for i in range(blocks)]
