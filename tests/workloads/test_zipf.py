"""Tests for the Zipf hotspot workload."""

import pytest

from repro.errors import WorkloadError
from repro.units import KiB, MiB
from repro.workloads import ZipfWorkload


def test_zipf_skew_concentrates_accesses():
    flat = ZipfWorkload(2, 16 * KiB, 8 * MiB, requests_per_rank=400,
                        skew=0.0, seed=3)
    skewed = ZipfWorkload(2, 16 * KiB, 8 * MiB, requests_per_rank=400,
                          skew=1.4, seed=3)
    # Higher skew -> smaller working set for the same request count.
    assert skewed.unique_blocks(0) < flat.unique_blocks(0)


def test_zipf_requests_within_rank_region():
    w = ZipfWorkload(4, 16 * KiB, 8 * MiB, requests_per_rank=100, seed=5)
    region = 8 * MiB // 4
    for rank in range(4):
        for offset, size in w.segments_for_rank(rank):
            assert rank * region <= offset < (rank + 1) * region
            assert size == 16 * KiB


def test_zipf_deterministic_per_seed():
    a = ZipfWorkload(2, 16 * KiB, 4 * MiB, seed=7)
    b = ZipfWorkload(2, 16 * KiB, 4 * MiB, seed=7)
    c = ZipfWorkload(2, 16 * KiB, 4 * MiB, seed=8)
    assert a.segments_for_rank(1) == b.segments_for_rank(1)
    assert a.segments_for_rank(1) != c.segments_for_rank(1)


def test_zipf_validation():
    with pytest.raises(WorkloadError):
        ZipfWorkload(2, 16 * KiB, 4 * MiB, requests_per_rank=0)
    with pytest.raises(WorkloadError):
        ZipfWorkload(2, 16 * KiB, 4 * MiB, skew=-1)
    with pytest.raises(WorkloadError):
        ZipfWorkload(64, 16 * MiB, 4 * MiB)


def test_zipf_cache_benefits_from_reuse():
    """With a hot working set that fits, S4D read hits accumulate."""
    from repro.cluster import ClusterSpec, run_workload

    spec = ClusterSpec(num_dservers=2, num_cservers=2, num_nodes=2, seed=9)
    w = ZipfWorkload(2, 16 * KiB, 256 * MiB, requests_per_rank=150,
                     skew=1.3, seed=11)
    result = run_workload(spec, w, s4d=True, phases=("write",))
    metrics = result.metrics
    # Re-written hot blocks hit the cache mapping instead of
    # re-allocating (write hits), unlike IOR's one-touch streams.
    assert metrics.write_hits > 0
